// Package interp executes compiled programs on the simulated cluster.
// It is the execution half of the reproduction: the same evaluator runs
//
//   - the sequential baseline (the inlined, analyzed main unit on one
//     processor), and
//   - the SPMD translation from internal/postpass on P processors over
//     the MPI-2 runtime — master/slave, barriers and fences at region
//     boundaries, data scattering/collecting via window PUTs, exactly
//     the §3/§5 execution model.
//
// Virtual time: every executed statement charges the CPU cost model;
// every MPI call charges the NIC cost model. Two modes exist:
//
//   - Full: every iteration really executes and data really moves —
//     used for correctness verification against a native Go oracle;
//   - Timing: loop nests free of I/O, calls and branches are charged in
//     closed form without executing each iteration, and transfers are
//     charged without copying. Virtual time is identical to Full mode
//     by construction (same cost formulas) for programs whose control
//     flow does not depend on data, which holds for all benchmarks.
package interp

import (
	"fmt"
	"io"

	"vbuscluster/internal/analysis"
	"vbuscluster/internal/cluster"
	"vbuscluster/internal/f77"
	"vbuscluster/internal/mpi"
	"vbuscluster/internal/sim"
)

// Mode selects execution fidelity.
type Mode int

// Execution modes.
const (
	// Full executes every iteration and moves real data.
	Full Mode = iota
	// Timing charges virtual time in bulk and skips data movement.
	Timing
)

func (m Mode) String() string {
	if m == Timing {
		return "timing"
	}
	return "full"
}

// Env is one process's execution environment.
type Env struct {
	prog *f77.Program
	unit *f77.Unit
	mem  map[*f77.Symbol][]float64

	cl   *cluster.Cluster
	rank int
	cpu  cluster.CPUParams
	mode Mode
	out  io.Writer

	// lazy defers array allocation to first touch. Set on slave ranks
	// in Timing mode, where bulk-charged loops and charge-only
	// transfers never read the arrays: a 1024-rank timing run then
	// allocates the program's arrays once (on the master) instead of
	// 1024 times. Layouts are still registered eagerly so subscript
	// checking and cost analysis see constant bounds.
	lazy bool

	// pending accumulates compute charges between flushes so the
	// cluster mutex is not taken per statement.
	pending sim.Time

	// spmdTax is added to every loop iteration while executing a
	// partitioned region: the generated SPMD code's extra address and
	// bound arithmetic (what drags the paper's 1-node speedup to 0.96).
	spmdTax sim.Time

	// regionStats collects the per-region profile on the master.
	regionStats []RegionStat

	// world, set on parallel runs, lets long compute loops observe an
	// external cancellation (World.Cancel) between iterations — MPI
	// calls already check on entry, but a partitioned loop with no
	// communication would otherwise run to completion after its job's
	// deadline expired. Nil for sequential runs.
	world *mpi.World

	// commons backs COMMON blocks: per block, per member-index storage,
	// shared by every unit executed in this env.
	commons map[string][][]float64

	// caches
	types    map[f77.Expr]f77.Type
	layouts  map[*f77.Symbol]*analysis.ArrayLayout
	aCosts   map[*f77.Assign]sim.Time
	bulkable map[*f77.DoLoop]bool
	varDep   map[*f77.DoLoop]bool
}

// runtimeError aborts execution through a panic recovered at the run
// boundary, carrying source context.
type runtimeError struct{ err error }

func (e *Env) fail(line int, format string, args ...any) {
	panic(runtimeError{fmt.Errorf("interp: line %d: %s", line, fmt.Sprintf(format, args...))})
}

// checkCancelled aborts execution when the run has been cancelled from
// outside (job deadline, explicit abort). The panic carries the same
// structured *mpi.Error the communication layer raises, and recoverRun
// converts it into the run's error. A single atomic load per call —
// uncancelled runs stay bit-identical (no virtual-time charge).
func (e *Env) checkCancelled() {
	if e.world != nil && e.world.Cancelled() {
		panic(&mpi.Error{Kind: mpi.ErrCancelled, Rank: e.rank, Op: "compute", Peer: -1, Time: e.cl.Clock(e.rank)})
	}
}

// newEnv allocates the environment for one rank executing unit.
func newEnv(prog *f77.Program, unit *f77.Unit, cl *cluster.Cluster, rank int, mode Mode, out io.Writer) (*Env, error) {
	env := &Env{
		prog:     prog,
		unit:     unit,
		mem:      map[*f77.Symbol][]float64{},
		cl:       cl,
		rank:     rank,
		cpu:      cl.Params().CPU,
		mode:     mode,
		out:      out,
		types:    map[f77.Expr]f77.Type{},
		layouts:  map[*f77.Symbol]*analysis.ArrayLayout{},
		aCosts:   map[*f77.Assign]sim.Time{},
		bulkable: map[*f77.DoLoop]bool{},
		varDep:   map[*f77.DoLoop]bool{},
		commons:  map[string][][]float64{},
	}
	env.lazy = mode == Timing && rank != 0
	if err := env.allocUnit(unit); err != nil {
		return nil, err
	}
	return env, nil
}

// allocUnit allocates storage for every symbol of the unit. All array
// bounds must be compile-time constants (the front end inlined
// subroutines into the main unit; adjustable arrays remain only in
// units executed via CALL, which allocate at call time).
func (env *Env) allocUnit(u *f77.Unit) error {
	for _, sym := range u.Syms.Order {
		if sym.IsConst || sym.IsArg {
			continue
		}
		if sym.Common != "" {
			buf, err := env.commonSlot(sym)
			if err != nil {
				return err
			}
			env.mem[sym] = buf
			continue
		}
		if !sym.IsArray() {
			env.mem[sym] = make([]float64, 1)
			continue
		}
		lay, err := analysis.LayoutOf(sym)
		if err != nil || lay.Size == 0 {
			// Adjustable or assumed arrays allocate lazily at CALL
			// binding; in the main unit they are an error caught on
			// first access.
			continue
		}
		env.layouts[sym] = &lay
		if !env.lazy {
			env.mem[sym] = make([]float64, lay.Size)
		}
	}
	return nil
}

// commonSlot returns (allocating on first sight) the shared storage of
// a COMMON member, enforcing identical element counts across units.
func (env *Env) commonSlot(sym *f77.Symbol) ([]float64, error) {
	size := int64(1)
	if sym.IsArray() {
		lay, err := analysis.LayoutOf(sym)
		if err != nil || lay.Size == 0 {
			return nil, fmt.Errorf("interp: COMMON member %s needs constant bounds", sym.Name)
		}
		size = lay.Size
	}
	members := env.commons[sym.Common]
	for int64(len(members)) <= int64(sym.CommonIndex) {
		members = append(members, nil)
	}
	if members[sym.CommonIndex] == nil {
		members[sym.CommonIndex] = make([]float64, size)
	} else if int64(len(members[sym.CommonIndex])) != size {
		return nil, fmt.Errorf("interp: COMMON /%s/ member %d: %s wants %d elements, block has %d",
			sym.Common, sym.CommonIndex, sym.Name, size, len(members[sym.CommonIndex]))
	}
	env.commons[sym.Common] = members
	return members[sym.CommonIndex], nil
}

// applyDataInits runs the unit's DATA statements into this env.
func (env *Env) applyDataInits(u *f77.Unit) {
	for _, di := range u.DataInits {
		buf := env.storage(di.Sym, 0)
		for i, v := range di.Vals {
			if i < len(buf) {
				buf[i] = v
			}
		}
	}
}

// storage returns the backing slice of a symbol, allocating scalars on
// demand (implicitly declared in subroutine frames).
func (env *Env) storage(sym *f77.Symbol, line int) []float64 {
	if buf, ok := env.mem[sym]; ok {
		return buf
	}
	if sym.IsConst {
		env.fail(line, "storage of PARAMETER %s", sym.Name)
	}
	if !sym.IsArray() {
		buf := make([]float64, 1)
		env.mem[sym] = buf
		return buf
	}
	if lay, ok := env.layouts[sym]; ok && lay.Size > 0 {
		// Lazily deferred array touched after all: allocate now.
		// Zero-filled, exactly as the eager path would have left it.
		buf := make([]float64, lay.Size)
		env.mem[sym] = buf
		return buf
	}
	env.fail(line, "array %s has no storage (unbound dummy or non-constant bounds)", sym.Name)
	return nil
}

// winBacking returns the backing slice a window over sym should
// expose, without forcing a lazily deferred array into existence: a
// Timing-mode slave creates windows for charge accounting only and
// never moves real data through them, so a nil region is fine (the
// mpi layer only dereferences regions on actual data movement).
func (env *Env) winBacking(sym *f77.Symbol) []float64 {
	if buf, ok := env.mem[sym]; ok {
		return buf
	}
	if env.lazy {
		return nil
	}
	return env.storage(sym, 0)
}

// charge books compute time locally.
func (env *Env) charge(d sim.Time) { env.pending += d }

// flush publishes accumulated compute time to the cluster clock. Must
// run before any MPI call and at run end.
func (env *Env) flush() {
	if env.pending > 0 {
		env.cl.ChargeCompute(env.rank, env.pending)
		env.pending = 0
	}
}

// typeOf memoizes static expression types.
func (env *Env) typeOf(e f77.Expr) f77.Type {
	if t, ok := env.types[e]; ok {
		return t
	}
	t := f77.TypeOf(e)
	env.types[e] = t
	return t
}

// layout returns the constant layout of sym if available.
func (env *Env) layout(sym *f77.Symbol) *analysis.ArrayLayout {
	if l, ok := env.layouts[sym]; ok {
		return l
	}
	lay, err := analysis.LayoutOf(sym)
	if err != nil {
		return nil
	}
	env.layouts[sym] = &lay
	return &lay
}

// index computes the linear element offset of an array reference.
func (env *Env) index(sym *f77.Symbol, subs []f77.Expr, line int) int64 {
	if lay := env.layout(sym); lay != nil && lay.Size > 0 {
		var idx int64
		for i, sub := range subs {
			idx += (env.evalI(sub) - lay.Lows[i]) * lay.Mult[i]
		}
		if idx < 0 || idx >= lay.Size {
			env.fail(line, "%s subscript out of bounds: linear index %d, size %d", sym.Name, idx, lay.Size)
		}
		return idx
	}
	// Adjustable/assumed-size: evaluate bounds in the current frame.
	var idx, mult int64 = 0, 1
	buf := env.storage(sym, line)
	for i, d := range sym.Dims {
		low := int64(1)
		if d.Low != nil {
			low = env.evalI(d.Low)
		}
		idx += (env.evalI(subs[i]) - low) * mult
		if d.High != nil {
			mult *= env.evalI(d.High) - low + 1
		}
	}
	if idx < 0 || idx >= int64(len(buf)) {
		env.fail(line, "%s subscript out of bounds: linear index %d, size %d", sym.Name, idx, len(buf))
	}
	return idx
}

// setInt stores an integer value into a scalar symbol.
func (env *Env) setInt(sym *f77.Symbol, v int64, line int) {
	env.storage(sym, line)[0] = float64(v)
}

// getInt loads a scalar symbol as an integer.
func (env *Env) getInt(sym *f77.Symbol, line int) int64 {
	if sym.IsConst {
		return int64(sym.Const)
	}
	return int64(env.storage(sym, line)[0])
}
