package interp

import (
	"context"
	"errors"
	"testing"
	"time"

	"vbuscluster/internal/lmad"
	"vbuscluster/internal/mpi"
	"vbuscluster/internal/postpass"
)

// cancelSrc does enough distributed work that a run cannot finish
// before the context monitor lands its cancel: many parallel sweeps,
// each ending in the live-out exchange's rendezvous.
const cancelSrc = `
      PROGRAM LONG
      INTEGER N
      PARAMETER (N = 64)
      REAL A(N,N), B(N,N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          A(I,J) = REAL(I+J)
        ENDDO
      ENDDO
      DO K = 1, 40
        DO I = 1, N
          DO J = 1, N
            B(I,J) = A(I,J) * 1.0001 + REAL(K)
          ENDDO
        ENDDO
        DO I = 1, N
          DO J = 1, N
            A(I,J) = B(I,J)
          ENDDO
        ENDDO
      ENDDO
      PRINT *, A(1,1)
      END
`

func cancelProgram(t *testing.T) *postpass.Program {
	t.Helper()
	prog := compile(t, cancelSrc)
	pp, err := postpass.Translate(prog, postpass.Options{
		NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true,
	})
	if err != nil {
		t.Fatalf("postpass: %v", err)
	}
	return pp
}

// TestRunPreCancelledContext: a context that is already dead must stop
// the run — quickly, and with a structured cancellation error — rather
// than letting it execute to completion.
func TestRunPreCancelledContext(t *testing.T) {
	pp := cancelProgram(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunParallelConfig(pp, newCluster(t, 4), Timing, RunConfig{Ctx: ctx})
	if err == nil {
		t.Fatal("run with a pre-cancelled context completed successfully")
	}
	var me *mpi.Error
	if !errors.As(err, &me) || me.Kind != mpi.ErrCancelled {
		t.Fatalf("error %v, want an mpi.Error with kind cancelled", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("cancelled run still took %v", d)
	}
}

// TestRunMidflightCancel: cancelling while ranks are computing and
// rendezvousing unwinds every rank (no goroutine is left parked in a
// collective), and the same program runs clean afterwards — the world
// teardown left no shared state behind.
func TestRunMidflightCancel(t *testing.T) {
	pp := cancelProgram(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := RunParallelConfig(pp, newCluster(t, 4), Timing, RunConfig{Ctx: ctx})
	if err != nil {
		var me *mpi.Error
		if !errors.As(err, &me) || me.Kind != mpi.ErrCancelled {
			t.Fatalf("error %v, want an mpi.Error with kind cancelled (or a clean finish)", err)
		}
	}
	// A fresh run of the same translated program must be unaffected.
	if _, err := RunParallelConfig(pp, newCluster(t, 4), Timing, RunConfig{}); err != nil {
		t.Fatalf("clean run after a cancelled one: %v", err)
	}
}

// TestRunNilContextUnchanged: the zero-config path (no context) is the
// bit-identical baseline every prior table was produced with; it must
// still run clean.
func TestRunNilContextUnchanged(t *testing.T) {
	pp := cancelProgram(t)
	a, err := RunParallelConfig(pp, newCluster(t, 4), Timing, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunParallelConfig(pp, newCluster(t, 4), Timing, RunConfig{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed {
		t.Fatalf("a live (never-fired) context changed virtual time: %v vs %v", a.Elapsed, b.Elapsed)
	}
}
