package interp

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"vbuscluster/internal/ckpt"
	"vbuscluster/internal/cluster"
	"vbuscluster/internal/f77"
	"vbuscluster/internal/mpi"
	"vbuscluster/internal/postpass"
	"vbuscluster/internal/sim"
)

// ResilientConfig configures a checkpoint/restart execution.
type ResilientConfig struct {
	// Retranslate recompiles the postpass for a shrunken rank count
	// after a recovery (the front-end analysis is rank-count
	// independent, so only the SPMD translation reruns).
	Retranslate func(n int) (*postpass.Program, error)
	// Dir, when non-empty, persists every committed checkpoint as
	// epoch-NNN.vbck under this directory (created if missing). Empty
	// keeps checkpoints in memory only — the recovery protocol is
	// identical, nothing touches the filesystem.
	Dir string
	// Workers bounds concurrent rank goroutines exactly as
	// RunConfig.Workers does; each recovery attempt gets a fresh pool.
	Workers int
}

// RunResilient executes the SPMD translation with coordinated
// checkpoint/restart and ULFM-style communicator recovery:
//
//   - the resilience pass grouped the program's regions into epochs;
//     after each epoch every rank joins a CheckpointE quiesce and the
//     master commits a ckpt.Snapshot of the consistent cut;
//   - when a rank crashes (fault injection), the observing rank
//     revokes the communicator so no peer stays blocked, the
//     survivors Agree on the failed set, Shrink to a new communicator
//     with contiguous ranks over the surviving nodes, the program is
//     retranslated for the smaller rank count, and execution replays
//     from the last committed checkpoint (from the start when none
//     was committed yet).
//
// Virtual clocks never rewind: the replayed work, the checkpoint
// rounds and the recovery rounds all show up in the final report, so
// the cost of surviving the crash is measured rather than hidden.
func RunResilient(pp *postpass.Program, cl *cluster.Cluster, mode Mode, cfg ResilientConfig) (*Result, error) {
	if cl.N() != pp.Opts.NumProcs {
		return nil, fmt.Errorf("interp: program compiled for %d procs, cluster has %d", pp.Opts.NumProcs, cl.N())
	}
	if pp.Epochs == nil && len(pp.Regions) > 0 {
		return nil, fmt.Errorf("interp: resilient run needs a program compiled with Resilient (no checkpoint epochs)")
	}
	if cfg.Retranslate == nil {
		return nil, fmt.Errorf("interp: resilient run needs a Retranslate hook")
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
	}

	cur := pp
	world := mpi.NewWorld(cl)
	var (
		last        *ckpt.Snapshot // last committed checkpoint
		lastBlob    []byte
		recoveries  int
		checkpoints int
		recovering  bool // charge a RecoverE restore round this attempt
	)
	for {
		P := world.Size()
		var sched *pool
		if cfg.Workers >= 0 {
			// A fresh pool per attempt: a shrunken world re-parks on
			// clean state, and crashed ranks cannot leak slots across
			// attempts.
			sched = newPool(cl, effectiveWorkers(cfg.Workers))
			world.SetScheduler(sched)
		}
		var out bytes.Buffer
		if last != nil {
			out.Write(last.Output)
		}
		st := &epochState{
			snap:    last,
			blobLen: len(lastBlob),
			recover: recovering,
			commit: func(snap *ckpt.Snapshot, blob []byte) error {
				checkpoints++
				last, lastBlob = snap, blob
				if cfg.Dir != "" {
					name := filepath.Join(cfg.Dir, fmt.Sprintf("epoch-%03d.vbck", snap.Epoch))
					return os.WriteFile(name, blob, 0o644)
				}
				return nil
			},
		}
		envs := make([]*Env, P)
		errs := make([]error, P)
		nodes := world.Nodes()
		var wg sync.WaitGroup
		for r := 0; r < P; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if sched != nil {
					sched.acquire(nodes[rank])
					defer sched.release()
				}
				errs[rank] = runRankEpochs(cur, world.Rank(rank), mode, &out, &envs[rank], st)
				if errs[rank] != nil {
					// ULFM: the rank observing a failure revokes the
					// communicator so every blocked peer fails over to
					// the recovery path instead of deadlocking, then
					// departs.
					world.Revoke()
					world.Depart(rank)
				}
			}(r)
		}
		wg.Wait()
		firstErr := rootError(errs)
		if firstErr == nil {
			world.Shutdown()
			rep := cl.Snapshot()
			return &Result{
				Report:      rep,
				Elapsed:     rep.ElapsedVirtual(),
				Mem:         snapshotMem(envs[0]),
				Output:      out.String(),
				Regions:     envs[0].regionStats,
				Recoveries:  recoveries,
				Checkpoints: checkpoints,
			}, nil
		}
		world.Shutdown()
		var me *mpi.Error
		if !errors.As(firstErr, &me) {
			return nil, firstErr // interpreter error, not a rank failure
		}
		failed := world.Agree()
		if len(failed) == 0 {
			return nil, firstErr // no rank actually crashed — propagate
		}
		nw, err := world.Shrink(failed)
		if err != nil {
			return nil, fmt.Errorf("interp: unrecoverable: %v (after %w)", err, firstErr)
		}
		world = nw
		npp, err := cfg.Retranslate(world.Size())
		if err != nil {
			world.Shutdown()
			return nil, fmt.Errorf("interp: retranslate for %d survivors: %w", world.Size(), err)
		}
		cur = npp
		recovering = last != nil
		recoveries++
	}
}

// rootError picks the error to report from one attempt: the root
// cause, not the collateral — revocations and peer-crash observations
// exist only because some other rank failed first.
func rootError(errs []error) error {
	var first error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if first == nil {
			first = e
		}
		var me *mpi.Error
		if !errors.As(e, &me) || (me.Kind != mpi.ErrRevoked && me.Kind != mpi.ErrPeerCrashed) {
			return e
		}
	}
	return first
}

// epochState is the per-attempt restart context shared by every rank
// goroutine of one execution attempt.
type epochState struct {
	// snap is the restore point (nil: fresh start from the program
	// beginning).
	snap *ckpt.Snapshot
	// blobLen is the encoded size of snap, the payload RecoverE prices.
	blobLen int
	// recover makes the attempt open with a RecoverE restore round.
	recover bool
	// commit stores a freshly encoded checkpoint; called by rank 0
	// only, strictly after its CheckpointE quiesce succeeded (a crash
	// during the quiesce replays from the previous checkpoint).
	commit func(*ckpt.Snapshot, []byte) error
}

// runRankEpochs is runRank restructured around checkpoint epochs: the
// per-region execution is identical, but regions run epoch by epoch
// with a coordinated checkpoint at every epoch boundary, and the whole
// run may start mid-program from a restored snapshot.
func runRankEpochs(pp *postpass.Program, p *mpi.Proc, mode Mode, masterOut *bytes.Buffer, envOut **Env, st *epochState) (err error) {
	defer recoverRun(&err)
	var sink *bytes.Buffer
	if p.Rank() == 0 {
		sink = masterOut // already holds the snapshot's restored output
	} else {
		sink = &bytes.Buffer{}
	}
	env, err := newEnv(pp.Source, pp.Main, p.World().Cluster(), p.Rank(), mode, sink)
	if err != nil {
		return err
	}
	*envOut = env

	halted := false
	startEpoch := 0
	if st.snap != nil {
		startEpoch = st.snap.Epoch
		halted = st.snap.Halted
	}
	if p.Rank() == 0 {
		if st.snap == nil {
			env.applyDataInits(pp.Main)
		} else if err := env.restoreSnapshot(st.snap); err != nil {
			return err
		}
	}

	// Restore round: rank 0 reads the snapshot back and republishes the
	// restored state to the survivors (priced, traced on the recovery
	// transport).
	if st.recover {
		size := 0
		if p.Rank() == 0 {
			size = st.blobLen
		}
		if err := p.RecoverE(size); err != nil {
			return err
		}
	}

	wins := map[*f77.Symbol]*mpi.Win{}
	for _, sym := range pp.Windows {
		wins[sym] = p.WinCreate(sym.Name, env.winBacking(sym))
	}
	redWins := map[*f77.Symbol]*mpi.Win{}
	if pp.Opts.LockReductions {
		seen := map[*f77.Symbol]bool{}
		for _, region := range pp.Regions {
			if region.Par == nil {
				continue
			}
			for _, red := range region.Par.Reductions {
				if !seen[red.Sym] {
					seen[red.Sym] = true
					redWins[red.Sym] = p.WinCreate(red.Sym.Name+"$RED", make([]float64, 1))
				}
			}
		}
	}
	hasStop := false
	f77.WalkStmts(pp.Main.Body, func(s f77.Stmt) bool {
		if _, ok := s.(*f77.StopStmt); ok {
			hasStop = true
		}
		return true
	})

	for e := startEpoch; e < len(pp.Epochs); e++ {
		for _, ri := range pp.Epochs[e] {
			region := pp.Regions[ri]
			var startClock, startComm sim.Time
			if p.Rank() == 0 {
				startClock = env.cl.Clock(0)
				startComm = env.cl.Snapshot().TotalXferTime()
			}
			recordRegion := func() {
				if p.Rank() != 0 {
					return
				}
				stRec := RegionStat{Index: ri, Parallel: region.Par != nil}
				if region.Par != nil {
					stRec.LoopVar = region.Par.Loop.Var.Name
					stRec.Line = region.Par.Loop.Line()
				} else if len(region.Stmts) > 0 {
					stRec.Line = region.Stmts[0].Line()
				}
				stRec.Elapsed = env.cl.Clock(0) - startClock
				stRec.Comm = env.cl.Snapshot().TotalXferTime() - startComm
				env.regionStats = append(env.regionStats, stRec)
			}
			if region.Par == nil {
				if p.Rank() == 0 && !halted {
					if c, _ := env.execStmts(region.Stmts); c == ctrlStop {
						halted = true
					}
				}
				env.flush()
				p.Barrier()
				if hasStop {
					flag := 0.0
					if halted {
						flag = 1
					}
					if got := p.Bcast(0, []float64{flag}); got[0] != 0 {
						halted = true
					}
				}
				recordRegion()
				continue
			}
			if halted {
				env.flush()
				p.Barrier()
				p.Barrier()
				p.Barrier()
				continue
			}
			if err := env.runParRegion(pp, region.Par, p, wins, redWins); err != nil {
				return err
			}
			recordRegion()
		}
		if e == len(pp.Epochs)-1 {
			break // the final epoch ends the run; nothing left to protect
		}
		// ---- Coordinated checkpoint at the epoch boundary.
		var snap *ckpt.Snapshot
		var blob []byte
		size := 0
		if p.Rank() == 0 {
			snap = env.buildSnapshot(e+1, halted, p.World().Nodes(), sink)
			blob = snap.Encode()
			size = len(blob)
		}
		if err := p.CheckpointE(size); err != nil {
			return err
		}
		if p.Rank() == 0 {
			// The quiesce advanced every clock; re-stamp them so a
			// restore sees the post-checkpoint cut (same encoded size —
			// the clock section is fixed-width).
			snap.Clocks = clocksOf(env.cl)
			blob = snap.Encode()
			if err := st.commit(snap, blob); err != nil {
				return err
			}
		}
	}
	env.flush()
	return nil
}

// buildSnapshot captures the master's consistent cut at an epoch
// boundary: next epoch to run, halt flag, surviving nodes, all
// physical clocks, accumulated output, region profile and every
// program array by symbol name.
func (env *Env) buildSnapshot(epoch int, halted bool, nodes []int, out *bytes.Buffer) *ckpt.Snapshot {
	s := &ckpt.Snapshot{
		Epoch:  epoch,
		Halted: halted,
		Nodes:  nodes,
		Clocks: clocksOf(env.cl),
		Output: append([]byte(nil), out.Bytes()...),
		Arrays: map[string][]float64{},
	}
	for _, r := range env.regionStats {
		s.Regions = append(s.Regions, ckpt.Region{
			Index: r.Index, Parallel: r.Parallel, LoopVar: r.LoopVar,
			Line: r.Line, Elapsed: r.Elapsed, Comm: r.Comm,
		})
	}
	for sym, buf := range env.mem {
		s.Arrays[sym.Name] = append([]float64(nil), buf...)
	}
	return s
}

// restoreSnapshot loads a checkpoint back into a fresh master env:
// every program array takes its checkpointed values (symbols the
// snapshot does not know stay zero, like a fresh start would leave
// them), and the region profile continues from the checkpointed rows.
func (env *Env) restoreSnapshot(s *ckpt.Snapshot) error {
	for sym, buf := range env.mem {
		vals, ok := s.Arrays[sym.Name]
		if !ok {
			continue
		}
		if len(vals) != len(buf) {
			return fmt.Errorf("interp: checkpoint array %s has %d cells, program needs %d", sym.Name, len(vals), len(buf))
		}
		copy(buf, vals)
	}
	env.regionStats = env.regionStats[:0]
	for _, r := range s.Regions {
		env.regionStats = append(env.regionStats, RegionStat{
			Index: r.Index, Parallel: r.Parallel, LoopVar: r.LoopVar,
			Line: r.Line, Elapsed: r.Elapsed, Comm: r.Comm,
		})
	}
	return nil
}

// clocksOf samples every physical node's virtual clock.
func clocksOf(cl *cluster.Cluster) []sim.Time {
	out := make([]sim.Time, cl.N())
	for i := range out {
		out[i] = cl.Clock(i)
	}
	return out
}
