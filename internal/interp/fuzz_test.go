package interp

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"vbuscluster/internal/analysis"
	"vbuscluster/internal/f77"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/postpass"
)

// progGen builds random-but-valid Fortran 77 programs exercising the
// whole pipeline: mixes of parallelizable elementwise loops, strided
// writes, 2-D nests, reductions, scalar broadcasts, and deliberately
// serial recurrences. The differential test below checks that the SPMD
// translation computes exactly what the sequential program does, for
// every grain and processor count.
type progGen struct {
	rng  *rand.Rand
	sb   strings.Builder
	arrs []string // 1-D arrays
	mats []string // 2-D arrays
	n    int
}

func newProgGen(seed int64) *progGen {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	g.n = 8 + g.rng.Intn(17) // 8..24
	na := 2 + g.rng.Intn(2)
	for i := 0; i < na; i++ {
		g.arrs = append(g.arrs, fmt.Sprintf("V%d", i))
	}
	nm := 1 + g.rng.Intn(2)
	for i := 0; i < nm; i++ {
		g.mats = append(g.mats, fmt.Sprintf("M%d", i))
	}
	return g
}

func (g *progGen) pick(list []string) string { return list[g.rng.Intn(len(list))] }

// expr1 builds a random scalar expression over 1-D array elements at
// index idx.
func (g *progGen) expr1(idx string, depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%s(%s)", g.pick(g.arrs), idx)
		case 1:
			return fmt.Sprintf("%.1f", float64(g.rng.Intn(9))+0.5)
		case 2:
			return fmt.Sprintf("REAL(%s)", idx)
		default:
			return "X"
		}
	}
	l := g.expr1(idx, depth-1)
	r := g.expr1(idx, depth-1)
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, r)
	case 1:
		return fmt.Sprintf("(%s - %s)", l, r)
	case 2:
		return fmt.Sprintf("(%s * 0.5 + %s)", l, r)
	default:
		return fmt.Sprintf("ABS(%s)", l)
	}
}

func (g *progGen) line(format string, args ...any) {
	fmt.Fprintf(&g.sb, format+"\n", args...)
}

// Generate returns the program text.
func (g *progGen) Generate() string {
	g.line("      PROGRAM FUZZ")
	g.line("      INTEGER N")
	g.line("      PARAMETER (N = %d)", g.n)
	for _, a := range g.arrs {
		g.line("      REAL %s(2*N)", a)
	}
	for _, m := range g.mats {
		g.line("      REAL %s(N,N)", m)
	}
	g.line("      REAL X, S")
	g.line("      INTEGER I, J")
	g.line("      X = 1.5")
	g.line("      S = 0.0")
	// Initialization loops so every array is defined before use.
	for _, a := range g.arrs {
		g.line("      DO I = 1, 2*N")
		g.line("        %s(I) = REAL(I) * %0.2f", a, 0.25+float64(g.rng.Intn(4)))
		g.line("      ENDDO")
	}
	for _, m := range g.mats {
		g.line("      DO I = 1, N")
		g.line("        DO J = 1, N")
		g.line("          %s(I,J) = REAL(I) - REAL(J) * 0.5", m)
		g.line("        ENDDO")
		g.line("      ENDDO")
	}
	// Random body regions.
	regions := 2 + g.rng.Intn(3)
	for r := 0; r < regions; r++ {
		switch g.rng.Intn(9) {
		case 0: // elementwise over a 1-D array
			dst := g.pick(g.arrs)
			g.line("      DO I = 1, 2*N")
			g.line("        %s(I) = %s", dst, g.expr1("I", 2))
			g.line("      ENDDO")
		case 1: // strided (CFFT-like) writes
			dst := g.pick(g.arrs)
			g.line("      DO I = 1, N")
			g.line("        %s(2*I-1) = %s", dst, g.expr1("I", 1))
			g.line("        %s(2*I) = %s", dst, g.expr1("I", 1))
			g.line("      ENDDO")
		case 2: // 2-D elementwise with scalar broadcast
			dst := g.pick(g.mats)
			g.line("      DO I = 1, N")
			g.line("        DO J = 1, N")
			g.line("          %s(I,J) = %s(I,J) * X + REAL(I+J)", dst, dst)
			g.line("        ENDDO")
			g.line("      ENDDO")
		case 3: // sum reduction
			src := g.pick(g.arrs)
			g.line("      DO I = 1, 2*N")
			g.line("        S = S + %s(I)", src)
			g.line("      ENDDO")
			g.line("      X = S * 0.125")
		case 4: // serial recurrence (must stay on the master)
			dst := g.pick(g.arrs)
			g.line("      DO I = 2, 2*N")
			g.line("        %s(I) = %s(I-1) * 0.5 + %s(I)", dst, dst, dst)
			g.line("      ENDDO")
		case 6: // reversed subscript (negative coefficient)
			dst := g.pick(g.arrs)
			g.line("      DO I = 1, 2*N")
			g.line("        %s(2*N - I + 1) = %s", dst, g.expr1("I", 1))
			g.line("      ENDDO")
		case 8: // triangular 2-D update (cyclic schedule)
			dst := g.pick(g.mats)
			g.line("      DO I = 1, N")
			g.line("        DO J = I, N")
			g.line("          %s(J,I) = %s(J,I) * 0.5 + REAL(I)", dst, dst)
			g.line("        ENDDO")
			g.line("      ENDDO")
		case 7: // downward loop
			dst := g.pick(g.arrs)
			g.line("      DO I = 2*N, 1, -1")
			g.line("        %s(I) = %s", dst, g.expr1("I", 1))
			g.line("      ENDDO")
		default: // privatizable temporary
			dst := g.pick(g.arrs)
			g.line("      DO I = 1, 2*N")
			g.line("        X = %s(I) * 2.0", dst)
			g.line("        %s(I) = X + 1.0", dst)
			g.line("      ENDDO")
			g.line("      X = 1.5")
		}
	}
	g.line("      PRINT *, S, X")
	g.line("      END")
	return g.sb.String()
}

// TestFuzzParallelEqualsSequential is the whole-pipeline differential
// test: for dozens of random programs, the compiled SPMD execution on
// 1..4 processors at every granularity must produce the master memory
// the sequential execution produces (reductions compared with an FP
// reassociation tolerance; everything else exactly).
func TestFuzzParallelEqualsSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz differential test skipped in -short mode")
	}
	const seeds = 60
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := newProgGen(seed)
			src := g.Generate()
			prog := compile(t, src)
			cl := newCluster(t, 1)
			seq, err := RunSequential(prog, cl, Full)
			if err != nil {
				t.Fatalf("sequential: %v\n%s", err, src)
			}
			grain := []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse}[seed%3]
			procs := int(seed%4) + 1
			lock := seed%2 == 0
			twoSided := seed%5 == 0
			pull := seed%3 == 0 && !twoSided
			pp, err := postpass.Translate(prog, postpass.Options{
				NumProcs: procs, Grain: grain, LiveOutAll: true,
				LockReductions: lock, TwoSided: twoSided, PullScatter: pull,
			})
			if err != nil {
				t.Fatalf("postpass: %v\n%s", err, src)
			}
			par, err := RunParallel(pp, newCluster(t, procs), Full)
			if err != nil {
				t.Fatalf("parallel: %v\n%s", err, src)
			}
			for name, want := range seq.Mem {
				got, ok := par.Mem[name]
				if !ok {
					continue // compiler temporaries may differ by rank
				}
				if len(got) != len(want) {
					t.Fatalf("%s length mismatch\n%s", name, src)
				}
				for i := range want {
					diff := math.Abs(want[i] - got[i])
					if diff > 1e-9*(1+math.Abs(want[i])) {
						t.Fatalf("grain=%v procs=%d lock=%v two=%v: %s[%d] = %g, want %g\nprogram:\n%s",
							grain, procs, lock, twoSided, name, i, got[i], want[i], src)
					}
				}
			}
		})
	}
}

// TestFuzzFormatRoundTrip: formatting a random program and reparsing
// it must produce identical sequential results.
func TestFuzzFormatRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	for seed := int64(200); seed < 230; seed++ {
		src := newProgGen(seed).Generate()
		orig, err := f77.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		formatted := f77.Format(orig)
		a := compile(t, src)
		b, err := f77.Parse(formatted)
		if err != nil {
			t.Fatalf("seed %d reparse: %v\n%s", seed, err, formatted)
		}
		if err := analysis.FrontEnd(b); err != nil {
			t.Fatalf("seed %d front end: %v", seed, err)
		}
		ra, err := RunSequential(a, newCluster(t, 1), Full)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := RunSequential(b, newCluster(t, 1), Full)
		if err != nil {
			t.Fatal(err)
		}
		for name, want := range ra.Mem {
			got, ok := rb.Mem[name]
			if !ok || len(got) != len(want) {
				continue
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("seed %d: %s[%d] = %g vs %g\nformatted:\n%s", seed, name, i, want[i], got[i], formatted)
				}
			}
		}
	}
}

// TestFuzzTimingEqualsFull checks the timing-mode invariant on random
// programs: identical virtual time with and without real execution.
func TestFuzzTimingEqualsFull(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz timing test skipped in -short mode")
	}
	for seed := int64(100); seed < 115; seed++ {
		g := newProgGen(seed)
		src := g.Generate()
		prog := compile(t, src)
		full, err := RunSequential(prog, newCluster(t, 1), Full)
		if err != nil {
			t.Fatalf("seed %d full: %v", seed, err)
		}
		timing, err := RunSequential(compile(t, src), newCluster(t, 1), Timing)
		if err != nil {
			t.Fatalf("seed %d timing: %v", seed, err)
		}
		if full.Elapsed != timing.Elapsed {
			t.Fatalf("seed %d: full %v != timing %v\n%s", seed, full.Elapsed, timing.Elapsed, src)
		}
	}
}
