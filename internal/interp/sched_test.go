package interp

import (
	"reflect"
	"testing"

	"vbuscluster/internal/cluster"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/postpass"
	"vbuscluster/internal/trace"
)

// reductionSrc exercises the lock path under LockReductions: a
// parallel reduction whose combining runs inside MPI_WIN_LOCK critical
// sections on the master.
const reductionSrc = `
      PROGRAM RED
      INTEGER N
      PARAMETER (N = 32)
      REAL A(N), S
      INTEGER I
      DO I = 1, N
        A(I) = REAL(I)
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + A(I)*A(I)
      ENDDO
      PRINT *, S
      END
`

// runPooled executes src on 4 ranks of the named fabric with the given
// worker-pool size, returning the result and the recorded timeline.
func runPooled(t *testing.T, src, fabric string, lockRed bool, workers int) (*Result, []trace.Event) {
	t.Helper()
	prog := compile(t, src)
	pp, err := postpass.Translate(prog, postpass.Options{
		NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true, LockReductions: lockRed,
	})
	if err != nil {
		t.Fatalf("postpass: %v", err)
	}
	params, err := cluster.ParamsForFabric(fabric)
	if err != nil {
		t.Fatalf("fabric %q: %v", fabric, err)
	}
	cl, err := cluster.New(4, params)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New()
	cl.SetRecorder(rec)
	res, err := RunParallelConfig(pp, cl, Full, RunConfig{Workers: workers})
	if err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}
	return res, rec.Events()
}

// The pooled scheduler must be invisible in every observable output:
// for any worker count, payloads, final clocks and the full trace
// timeline match the legacy unpooled launcher (Workers < 0)
// byte-for-byte, on every fabric.
func TestPooledSchedulerEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		lockRed bool
	}{
		{"mm", mmSrc, false},
		{"reduction-locked", reductionSrc, true},
	}
	for _, cse := range cases {
		for _, fabric := range []string{"vbus", "ethernet", "ideal"} {
			refRes, refEvs := runPooled(t, cse.src, fabric, cse.lockRed, -1)
			for _, workers := range []int{1, 2, 3, 8, 0} {
				res, evs := runPooled(t, cse.src, fabric, cse.lockRed, workers)
				tag := cse.name + "/" + fabric
				if res.Output != refRes.Output {
					t.Errorf("%s workers=%d: output %q != unpooled %q", tag, workers, res.Output, refRes.Output)
				}
				if res.Elapsed != refRes.Elapsed {
					t.Errorf("%s workers=%d: elapsed %v != unpooled %v", tag, workers, res.Elapsed, refRes.Elapsed)
				}
				if !reflect.DeepEqual(res.Report.Clocks, refRes.Report.Clocks) {
					t.Errorf("%s workers=%d: clocks %v != unpooled %v", tag, workers, res.Report.Clocks, refRes.Report.Clocks)
				}
				if !reflect.DeepEqual(res.Mem, refRes.Mem) {
					t.Errorf("%s workers=%d: master memory differs from unpooled", tag, workers)
				}
				if !reflect.DeepEqual(evs, refEvs) {
					t.Errorf("%s workers=%d: %d trace events != unpooled %d, or contents differ",
						tag, workers, len(evs), len(refEvs))
				}
			}
		}
	}
}

// Timing mode must stay deterministic under the pool too — it is the
// mode the 1024-rank sweep runs in.
func TestPooledTimingDeterministic(t *testing.T) {
	ref, _ := runPooled(t, mmSrc, "vbus", false, -1)
	for _, workers := range []int{1, 4} {
		prog := compile(t, mmSrc)
		pp, err := postpass.Translate(prog, postpass.Options{NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true})
		if err != nil {
			t.Fatalf("postpass: %v", err)
		}
		res, err := RunParallelConfig(pp, newCluster(t, 4), Timing, RunConfig{Workers: workers})
		if err != nil {
			t.Fatalf("timing run: %v", err)
		}
		if res.Elapsed != ref.Elapsed {
			t.Errorf("timing workers=%d: elapsed %v != full-mode unpooled %v", workers, res.Elapsed, ref.Elapsed)
		}
	}
}

func TestEffectiveWorkers(t *testing.T) {
	if got := effectiveWorkers(3); got != 3 {
		t.Errorf("effectiveWorkers(3) = %d", got)
	}
	if got := effectiveWorkers(0); got < 1 {
		t.Errorf("effectiveWorkers(0) = %d, want >= 1", got)
	}
}
