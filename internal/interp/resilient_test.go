package interp

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"vbuscluster/internal/ckpt"
	"vbuscluster/internal/cluster"
	"vbuscluster/internal/fault"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/postpass"
)

// resSrc is the recovery property-test program: three parallel regions
// and a sequential tail, deliberately reduction-free — every output
// element is owned by exactly one rank, so the result is bitwise
// independent of the rank count and a shrunken replay must reproduce
// the fault-free bytes exactly.
const resSrc = `
      PROGRAM RES
      INTEGER N
      PARAMETER (N = 10)
      REAL A(N,N), B(N,N), C(N,N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          A(I,J) = REAL(I+J)
          B(I,J) = REAL(I-J)
          C(I,J) = 0.0
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = 1, N
          DO K = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = 1, N
          C(I,J) = C(I,J) * 2.0 + A(I,J)
        ENDDO
      ENDDO
      PRINT *, C(1,1)
      PRINT *, C(10,10)
      END
`

// runResilientTest compiles resSrc for the named fabric and runs it
// resiliently under the given fault spec ("" = fault-free).
func runResilientTest(t *testing.T, fabric, spec string, procs, ckptEvery int, mode Mode, dir string) (*Result, error) {
	t.Helper()
	prog := compile(t, resSrc)
	translate := func(n int) (*postpass.Program, error) {
		return postpass.Translate(prog, postpass.Options{
			NumProcs:   n,
			Grain:      lmad.Fine,
			LiveOutAll: true,
			Resilient:  true,
			CkptEvery:  ckptEvery,
		})
	}
	pp, err := translate(procs)
	if err != nil {
		t.Fatalf("postpass: %v", err)
	}
	params, err := cluster.ParamsForFabric(fabric)
	if err != nil {
		t.Fatalf("fabric %s: %v", fabric, err)
	}
	if spec != "" {
		inj, err := fault.FromString(spec)
		if err != nil {
			t.Fatalf("fault spec %q: %v", spec, err)
		}
		params.Faults = inj
	}
	cl, err := cluster.New(procs, params)
	if err != nil {
		t.Fatal(err)
	}
	return RunResilient(pp, cl, mode, ResilientConfig{Retranslate: translate, Dir: dir})
}

// memIdentical compares two result memories bit for bit.
func memIdentical(t *testing.T, label string, got, want map[string][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d arrays vs %d", label, len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok || len(g) != len(w) {
			t.Fatalf("%s: array %s missing or resized", label, name)
		}
		for i := range w {
			if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
				t.Fatalf("%s: %s[%d] = %g, want %g (bitwise)", label, name, i, g[i], w[i])
			}
		}
	}
}

// TestResilientMatchesPlainRun: with no faults, the resilient runner
// produces exactly the plain parallel run's memory and output — the
// checkpoint rounds only cost virtual time.
func TestResilientMatchesPlainRun(t *testing.T) {
	base := runPar(t, resSrc, 4, lmad.Fine, Full)
	res, err := runResilientTest(t, "vbus", "", 4, 1, Full, "")
	if err != nil {
		t.Fatalf("resilient: %v", err)
	}
	memIdentical(t, "fault-free resilient", res.Mem, base.Mem)
	if res.Output != base.Output {
		t.Fatalf("output %q, want %q", res.Output, base.Output)
	}
	if res.Recoveries != 0 {
		t.Fatalf("fault-free run reported %d recoveries", res.Recoveries)
	}
	if res.Checkpoints == 0 {
		t.Fatal("resilient run committed no checkpoints")
	}
}

// TestRecoveredRunBitIdentical is the recovery property: a rank killed
// after any operation budget — before the first checkpoint, between
// checkpoints, deep into the run — yields a completed run whose output
// arrays and printed output are byte-identical to the fault-free run,
// on every interconnect backend.
func TestRecoveredRunBitIdentical(t *testing.T) {
	for _, fabric := range []string{"vbus", "ethernet", "ideal"} {
		base, err := runResilientTest(t, fabric, "", 4, 1, Full, "")
		if err != nil {
			t.Fatalf("%s baseline: %v", fabric, err)
		}
		for _, budget := range []int{0, 1, 5, 9, 14, 20} {
			spec := fmt.Sprintf("seed=0,crashafter=1/%d", budget)
			t.Run(fmt.Sprintf("%s/kill@%d", fabric, budget), func(t *testing.T) {
				res, err := runResilientTest(t, fabric, spec, 4, 1, Full, "")
				if err != nil {
					t.Fatalf("resilient run under %s: %v", spec, err)
				}
				memIdentical(t, "recovered", res.Mem, base.Mem)
				if res.Output != base.Output {
					t.Fatalf("output %q, want %q", res.Output, base.Output)
				}
				if res.Recoveries != 1 {
					t.Fatalf("recoveries = %d, want 1", res.Recoveries)
				}
			})
		}
	}
}

// TestResilientSurvivesTwoCrashes: two ranks with separate budgets die
// at different points; two shrink-and-replay rounds still reach the
// fault-free bytes.
func TestResilientSurvivesTwoCrashes(t *testing.T) {
	base, err := runResilientTest(t, "vbus", "", 4, 1, Full, "")
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	res, err := runResilientTest(t, "vbus", "seed=0,crashafter=1/3,crashafter=3/30", 4, 1, Full, "")
	if err != nil {
		t.Fatalf("resilient: %v", err)
	}
	memIdentical(t, "twice-recovered", res.Mem, base.Mem)
	if res.Output != base.Output {
		t.Fatalf("output %q, want %q", res.Output, base.Output)
	}
	if res.Recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2", res.Recoveries)
	}
}

// TestResilientPersistsCheckpoints: with a checkpoint directory, every
// committed epoch snapshot lands on disk and decodes cleanly.
func TestResilientPersistsCheckpoints(t *testing.T) {
	dir := t.TempDir()
	res, err := runResilientTest(t, "vbus", "", 4, 1, Full, dir)
	if err != nil {
		t.Fatalf("resilient: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != res.Checkpoints {
		t.Fatalf("%d checkpoint files, committed %d", len(ents), res.Checkpoints)
	}
	for _, ent := range ents {
		blob, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ckpt.Decode(blob); err != nil {
			t.Fatalf("%s does not decode: %v", ent.Name(), err)
		}
	}
}
