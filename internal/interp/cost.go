package interp

import (
	"vbuscluster/internal/f77"
	"vbuscluster/internal/sim"
)

// intrinsicWeights cost intrinsics in FlopTime units (rough 2001-era
// libm latencies relative to a multiply-add).
var intrinsicWeights = map[string]int64{
	"SQRT": 6, "EXP": 12, "LOG": 12, "ALOG": 12,
	"SIN": 15, "COS": 15, "TAN": 20, "ATAN": 20, "ATAN2": 22,
	"MOD": 3, "DMOD": 3, "SIGN": 2, "NINT": 2,
}

// exprCost statically prices one expression evaluation.
func (env *Env) exprCost(e f77.Expr) sim.Time {
	switch x := e.(type) {
	case nil, *f77.IntLit, *f77.RealLit, *f77.LogLit, *f77.StrLit, *f77.VarExpr:
		return 0
	case *f77.ArrayExpr:
		// Address arithmetic per subscript plus the load.
		c := sim.Time(len(x.Subs)) * env.cpu.IntOpTime
		for _, s := range x.Subs {
			c += env.exprCost(s)
		}
		return c + env.cpu.IntOpTime
	case *f77.Un:
		return env.exprCost(x.X) + env.opCost(env.typeOf(x))
	case *f77.Bin:
		c := env.exprCost(x.L) + env.exprCost(x.R)
		switch x.Op {
		case f77.OpAnd, f77.OpOr, f77.OpLT, f77.OpLE, f77.OpGT, f77.OpGE, f77.OpEQ, f77.OpNE:
			return c + env.cpu.IntOpTime
		case f77.OpPow:
			return c + 10*env.cpu.FlopTime
		default:
			if env.typeOf(x.L).IsFloat() || env.typeOf(x.R).IsFloat() {
				return c + env.cpu.FlopTime
			}
			return c + env.cpu.IntOpTime
		}
	case *f77.CallExpr:
		var c sim.Time
		for _, a := range x.Args {
			c += env.exprCost(a)
		}
		if x.Intrinsic {
			w := intrinsicWeights[x.Name]
			if w == 0 {
				w = 1
			}
			return c + sim.Time(w)*env.cpu.FlopTime
		}
		// User functions price dynamically during execution; the call
		// site only carries the overhead here (body charges itself).
		return c + env.cpu.CallOverhead
	default:
		return 0
	}
}

func (env *Env) opCost(t f77.Type) sim.Time {
	if t.IsFloat() {
		return env.cpu.FlopTime
	}
	return env.cpu.IntOpTime
}

// assignCost prices one executed assignment (cached: the cost is
// static even though the values are not).
func (env *Env) assignCost(a *f77.Assign) sim.Time {
	if c, ok := env.aCosts[a]; ok {
		return c
	}
	c := env.exprCost(a.RHS) + env.cpu.IntOpTime // store
	for _, s := range a.LHS.Subs {
		c += env.exprCost(s) + env.cpu.IntOpTime
	}
	env.aCosts[a] = c
	return c
}

// isBulkable reports whether a loop subtree can be charged in closed
// form: only assignments, CONTINUEs and nested DO loops, and no user
// function calls (whose cost is execution-dependent).
func (env *Env) isBulkable(loop *f77.DoLoop) bool {
	if v, ok := env.bulkable[loop]; ok {
		return v
	}
	ok := true
	f77.WalkStmts([]f77.Stmt{loop}, func(s f77.Stmt) bool {
		switch s.(type) {
		case *f77.Assign, *f77.ContinueStmt, *f77.DoLoop:
		default:
			ok = false
		}
		f77.StmtExprs(s, func(e f77.Expr) {
			f77.WalkExpr(e, func(sub f77.Expr) {
				if c, isCall := sub.(*f77.CallExpr); isCall && !c.Intrinsic {
					ok = false
				}
			})
		})
		return ok
	})
	env.bulkable[loop] = ok
	return ok
}

// loopVarDependent reports whether any nested loop's bounds reference
// this loop's variable (triangular nests need per-iteration cost).
func (env *Env) loopVarDependent(loop *f77.DoLoop) bool {
	if v, ok := env.varDep[loop]; ok {
		return v
	}
	dep := false
	reads := func(e f77.Expr) {
		f77.WalkExpr(e, func(sub f77.Expr) {
			if v, ok := sub.(*f77.VarExpr); ok && v.Sym == loop.Var {
				dep = true
			}
		})
	}
	f77.WalkStmts(loop.Body, func(s f77.Stmt) bool {
		if inner, ok := s.(*f77.DoLoop); ok {
			reads(inner.From)
			reads(inner.To)
			if inner.Step != nil {
				reads(inner.Step)
			}
		}
		return true
	})
	env.varDep[loop] = dep
	return dep
}

// bulkLoopCost prices a bulkable loop without executing its body.
// Bounds were already evaluated by the caller.
func (env *Env) bulkLoopCost(loop *f77.DoLoop, from, to, step, trips int64) sim.Time {
	if trips <= 0 {
		return 0
	}
	if !env.loopVarDependent(loop) {
		env.setInt(loop.Var, from, loop.Line())
		per := env.cpu.LoopOverhead + env.spmdTax + env.stmtsCost(loop.Body)
		return sim.Time(trips) * per
	}
	var total sim.Time
	v := from
	for k := int64(0); k < trips; k++ {
		env.setInt(loop.Var, v, loop.Line())
		total += env.cpu.LoopOverhead + env.spmdTax + env.stmtsCost(loop.Body)
		v += step
	}
	return total
}

// stmtsCost prices a bulkable statement list in the current env (loop
// variables of enclosing dry-run levels are set in storage).
func (env *Env) stmtsCost(stmts []f77.Stmt) sim.Time {
	var total sim.Time
	for _, s := range stmts {
		switch x := s.(type) {
		case *f77.Assign:
			total += env.assignCost(x)
		case *f77.ContinueStmt:
		case *f77.DoLoop:
			total += 3 * env.cpu.IntOpTime
			from, to, step, trips := env.loopBounds(x)
			total += env.bulkLoopCost(x, from, to, step, trips)
			env.setInt(x.Var, from+trips*step, x.Line())
		default:
			env.fail(s.Line(), "non-bulkable statement in bulk costing: %T", s)
		}
	}
	return total
}
