package interp

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"vbuscluster/internal/analysis"
	"vbuscluster/internal/cluster"
	"vbuscluster/internal/f77"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/mpi"
	"vbuscluster/internal/postpass"
	"vbuscluster/internal/sim"
)

// Result is the outcome of one program execution.
type Result struct {
	// Report is the cluster accounting snapshot (virtual clocks, comm
	// time, bytes).
	Report cluster.Report
	// Elapsed is the makespan in virtual time.
	Elapsed sim.Time
	// Mem is the master's final memory, keyed by symbol name.
	Mem map[string][]float64
	// Output is what the program printed (master only).
	Output string
	// Regions is the per-region profile of a parallel run (nil for
	// sequential runs) — the §5.6 "profiling tools [20]" capability
	// that guides granularity selection: wall virtual time and data
	// communication per region.
	Regions []RegionStat
	// Checkpoints counts the coordinated checkpoints a resilient run
	// committed (zero for RunSequential/RunParallel).
	Checkpoints int
	// Recoveries counts the shrink-and-replay rounds a resilient run
	// survived (zero for RunSequential/RunParallel).
	Recoveries int
}

// RegionStat profiles one SPMD region.
type RegionStat struct {
	// Index is the region's position in postpass.Program.Regions.
	Index int
	// Parallel reports whether this was a partitioned region.
	Parallel bool
	// LoopVar names the parallel loop's index variable ("" for
	// sequential regions).
	LoopVar string
	// Line is the source line of the region's first statement.
	Line int
	// Elapsed is the virtual wall time the region took (clocks are
	// reconciled at region boundaries, so this is exact).
	Elapsed sim.Time
	// Comm is the data scattering/collecting time the region charged,
	// summed over ranks.
	Comm sim.Time
}

// String renders a profile table.
func FormatRegions(stats []RegionStat) string {
	var sb strings.Builder
	sb.WriteString("region  kind        line  elapsed       comm\n")
	for _, r := range stats {
		kind := "sequential"
		if r.Parallel {
			kind = "DO " + r.LoopVar
		}
		fmt.Fprintf(&sb, "%-7d %-11s %-5d %-13v %v\n", r.Index, kind, r.Line, r.Elapsed, r.Comm)
	}
	return sb.String()
}

// snapshotMem copies an env's memory for result inspection.
func snapshotMem(env *Env) map[string][]float64 {
	out := map[string][]float64{}
	for sym, buf := range env.mem {
		out[sym.Name] = append([]float64(nil), buf...)
	}
	return out
}

// recoverRun converts interpreter panics into errors; STOP is clean
// termination. Structured MPI fault errors (timeouts, crashes under
// fault injection) propagate as the run's error.
func recoverRun(err *error) {
	if r := recover(); r != nil {
		if _, ok := r.(stopSignal); ok {
			return
		}
		if re, ok := r.(runtimeError); ok {
			*err = re.err
			return
		}
		if me, ok := r.(*mpi.Error); ok {
			*err = me
			return
		}
		panic(r)
	}
}

// RunSequential executes the main unit of prog on a single processor —
// the paper's sequential baseline for speedup measurements. The
// cluster must have exactly one process.
func RunSequential(prog *f77.Program, cl *cluster.Cluster, mode Mode) (*Result, error) {
	if cl.N() != 1 {
		return nil, fmt.Errorf("interp: sequential run needs a 1-process cluster, got %d", cl.N())
	}
	main := prog.Main()
	if main == nil {
		return nil, fmt.Errorf("interp: program has no main unit")
	}
	var out bytes.Buffer
	env, err := newEnv(prog, main, cl, 0, mode, &out)
	if err != nil {
		return nil, err
	}
	err = func() (err error) {
		defer recoverRun(&err)
		env.applyDataInits(main)
		env.execUnitBody(main)
		return nil
	}()
	if err != nil {
		return nil, err
	}
	env.flush()
	rep := cl.Snapshot()
	return &Result{
		Report:  rep,
		Elapsed: rep.ElapsedVirtual(),
		Mem:     snapshotMem(env),
		Output:  out.String(),
	}, nil
}

// RunParallel executes the SPMD translation on the cluster with the
// default run configuration: rank goroutines multiplexed over a
// GOMAXPROCS-sized worker pool, master/slave execution with
// scatter/fence/compute/collect/fence per parallel region (§3, §5.4,
// §5.5).
func RunParallel(pp *postpass.Program, cl *cluster.Cluster, mode Mode) (*Result, error) {
	return RunParallelConfig(pp, cl, mode, RunConfig{})
}

// RunParallelConfig is RunParallel with an explicit run configuration
// (worker-pool sizing; see RunConfig).
func RunParallelConfig(pp *postpass.Program, cl *cluster.Cluster, mode Mode, cfg RunConfig) (*Result, error) {
	P := cl.N()
	if P != pp.Opts.NumProcs {
		return nil, fmt.Errorf("interp: program compiled for %d procs, cluster has %d", pp.Opts.NumProcs, P)
	}
	world := mpi.NewWorld(cl)
	defer world.Shutdown()
	var sched *pool
	if cfg.Workers >= 0 {
		sched = newPool(cl, effectiveWorkers(cfg.Workers))
		world.SetScheduler(sched)
	}
	if cfg.Ctx != nil {
		// Context monitor: translate an external cancellation into a
		// world cancel so blocked and computing ranks both unwind. The
		// monitor itself exits when the run completes.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-cfg.Ctx.Done():
				world.Cancel()
			case <-stop:
			}
		}()
	}
	var out bytes.Buffer

	envs := make([]*Env, P)
	errs := make([]error, P)
	nodes := world.Nodes()
	var wg sync.WaitGroup
	for r := 0; r < P; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if sched != nil {
				// Hold a worker slot while runnable; release runs
				// before wg.Done (LIFO), after any Depart below.
				sched.acquire(nodes[rank])
				defer sched.release()
			}
			errs[rank] = runRank(pp, world.Rank(rank), mode, &out, &envs[rank])
			if errs[rank] != nil {
				// A rank that dies on an error must not strand its
				// peers in a rendezvous: mark it departed so blocked
				// operations fail over to structured errors.
				world.Depart(rank)
			}
		}(r)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	rep := cl.Snapshot()
	return &Result{
		Report:  rep,
		Elapsed: rep.ElapsedVirtual(),
		Mem:     snapshotMem(envs[0]),
		Output:  out.String(),
		Regions: envs[0].regionStats,
	}, nil
}

func runRank(pp *postpass.Program, p *mpi.Proc, mode Mode, masterOut *bytes.Buffer, envOut **Env) (err error) {
	defer recoverRun(&err)
	var sink *bytes.Buffer
	if p.Rank() == 0 {
		sink = masterOut
	} else {
		sink = &bytes.Buffer{} // slaves' prints are discarded
	}
	env, err := newEnv(pp.Source, pp.Main, p.World().Cluster(), p.Rank(), mode, sink)
	if err != nil {
		return err
	}
	env.world = p.World()
	*envOut = env
	if p.Rank() == 0 {
		// "the master initially holds all program data objects".
		env.applyDataInits(pp.Main)
	}

	// §5.1 MPI environment generation: windows over every remotely
	// accessed variable.
	wins := map[*f77.Symbol]*mpi.Win{}
	for _, sym := range pp.Windows {
		wins[sym] = p.WinCreate(sym.Name, env.winBacking(sym))
	}
	// Lock-based reductions merge through dedicated one-cell windows
	// (separate from the live scalar, which the owning rank keeps
	// updating during the partitioned loop).
	redWins := map[*f77.Symbol]*mpi.Win{}
	if pp.Opts.LockReductions {
		seen := map[*f77.Symbol]bool{}
		for _, region := range pp.Regions {
			if region.Par == nil {
				continue
			}
			for _, red := range region.Par.Reductions {
				if !seen[red.Sym] {
					seen[red.Sym] = true
					redWins[red.Sym] = p.WinCreate(red.Sym.Name+"$RED", make([]float64, 1))
				}
			}
		}
	}

	// Programs containing STOP need the master's halt decision shared
	// with the slaves after each sequential section; STOP-free programs
	// (all the benchmarks) skip the extra broadcast.
	hasStop := false
	f77.WalkStmts(pp.Main.Body, func(s f77.Stmt) bool {
		if _, ok := s.(*f77.StopStmt); ok {
			hasStop = true
		}
		return true
	})

	halted := false
	for ri, region := range pp.Regions {
		env.checkCancelled()
		var startClock, startComm sim.Time
		if p.Rank() == 0 {
			startClock = env.cl.Clock(0)
			startComm = env.cl.Snapshot().TotalXferTime()
		}
		recordRegion := func() {
			if p.Rank() != 0 {
				return
			}
			st := RegionStat{Index: ri, Parallel: region.Par != nil}
			if region.Par != nil {
				st.LoopVar = region.Par.Loop.Var.Name
				st.Line = region.Par.Loop.Line()
			} else if len(region.Stmts) > 0 {
				st.Line = region.Stmts[0].Line()
			}
			st.Elapsed = env.cl.Clock(0) - startClock
			st.Comm = env.cl.Snapshot().TotalXferTime() - startComm
			env.regionStats = append(env.regionStats, st)
		}
		if region.Par == nil {
			// Sequential section: "the master executes all sequential
			// sections... slaves wait at barriers".
			if p.Rank() == 0 && !halted {
				if c, _ := env.execStmts(region.Stmts); c == ctrlStop {
					halted = true
				}
			}
			env.flush()
			p.Barrier()
			if hasStop {
				flag := 0.0
				if halted {
					flag = 1
				}
				if got := p.Bcast(0, []float64{flag}); got[0] != 0 {
					halted = true
				}
			}
			recordRegion()
			continue
		}
		if halted {
			// Everyone agreed to halt; the remaining regions are
			// skipped, with the region's three barriers kept so clocks
			// stay reconciled.
			env.flush()
			p.Barrier()
			p.Barrier()
			p.Barrier()
			continue
		}
		if err := env.runParRegion(pp, region.Par, p, wins, redWins); err != nil {
			return err
		}
		recordRegion()
	}
	env.flush()
	return nil
}

// runParRegion executes one parallel region: barrier, scatter+fence,
// partitioned loop, reduction combine, collect+fence.
func (env *Env) runParRegion(pp *postpass.Program, par *postpass.ParInfo, p *mpi.Proc, wins, redWins map[*f77.Symbol]*mpi.Win) error {
	P := p.Size()
	env.flush()
	p.Barrier()

	// ---- Reductions: every rank accumulates into a private partial
	// starting from the identity; the master's sequential prior value
	// is folded back in at the combine. With lock-based combining the
	// master seeds the shared cell now — before the scatter fence, so
	// every slave's later critical section is ordered after it.
	var reds []redState
	for _, red := range par.Reductions {
		buf := env.storage(red.Sym, par.Loop.Line())
		reds = append(reds, redState{red: red, pre: buf[0]})
		buf[0] = reductionIdentity(red.Op)
		if pp.Opts.LockReductions && p.Rank() == 0 {
			// Seed with the prior value so the cell accumulates
			// pre op partial_0 op ... op partial_{P-1}.
			redWins[red.Sym].Local(0)[0] = reds[len(reds)-1].pre
		}
	}

	// ---- Data scattering (§5.4): master → slaves.
	if pp.Opts.TwoSided {
		// MPI-1 baseline: explicit SEND on the master matched by
		// RECEIVE on each slave (both processors involved).
		if p.Rank() == 0 {
			for dst := 1; dst < P; dst++ {
				env.sendOps(p, par, par.Scatters, dst, dst)
			}
		} else {
			env.recvOps(p, par, par.Scatters, p.Rank(), p.Rank())
		}
	} else if pp.Opts.PullScatter {
		// One-sided pull: each slave GETs its own regions concurrently.
		if p.Rank() != 0 {
			env.pullOps(p, wins, par, par.Scatters, p.Rank())
		}
	} else if p.Rank() == 0 {
		for dst := 1; dst < P; dst++ {
			env.transferOps(p, wins, par, par.Scatters, dst, true)
		}
	}
	env.flush()
	p.Barrier() // fence: all scatters land before compute

	// ---- Partitioned execution (§5.3).
	trips := par.Ctx.Trips()
	myTrips := postpass.RankTrips(trips, p.Rank(), P, par.Schedule)
	env.runPartition(par.Loop, par.Ctx, myTrips)

	// ---- Combine reductions.
	if len(reds) > 0 {
		env.flush()
		if pp.Opts.LockReductions {
			env.combineReductionsLocked(par, p, redWins, reds)
		} else {
			contrib := make([]float64, len(reds))
			for i, rs := range reds {
				partial := env.storage(rs.red.Sym, 0)[0]
				if p.Rank() == 0 {
					partial = applyReduction(rs.red.Op, rs.pre, partial)
				}
				contrib[i] = partial
			}
			total := p.Allreduce(mpiOp(reds), contrib)
			for i, rs := range reds {
				env.storage(rs.red.Sym, 0)[0] = total[i]
			}
		}
	}

	// ---- Data collecting (§5.4): slaves → master.
	env.flush()
	if pp.Opts.TwoSided {
		if p.Rank() != 0 {
			env.sendOps(p, par, par.Collects, p.Rank(), p.Rank())
		} else {
			for src := 1; src < P; src++ {
				env.recvOps(p, par, par.Collects, src, src)
			}
		}
	} else if p.Rank() != 0 {
		env.transferOps(p, wins, par, par.Collects, p.Rank(), false)
	}
	env.flush()
	p.Barrier() // fence: all collects land before the master continues
	return nil
}

// redState pairs a recognized reduction with the master's sequential
// prior value.
type redState struct {
	red *f77.Reduction
	pre float64
}

// combineReductionsLocked is the paper's §3 lock-based scheme: every
// rank (master included) merges its partial into a shared one-cell
// window on the master inside an MPI_WIN_LOCK critical section; the
// combined value is then broadcast over the V-Bus. The cell was seeded
// with the master's sequential prior value before the scatter fence.
func (env *Env) combineReductionsLocked(par *postpass.ParInfo, p *mpi.Proc, redWins map[*f77.Symbol]*mpi.Win, reds []redState) {
	for _, rs := range reds {
		win := redWins[rs.red.Sym]
		if win == nil {
			env.fail(par.Loop.Line(), "no reduction window for %s", rs.red.Sym.Name)
		}
		partial := env.storage(rs.red.Sym, 0)[0]
		tmp := make([]float64, 1)
		p.Lock(win, 0)
		p.Get(win, 0, 0, tmp)
		tmp[0] = applyReduction(rs.red.Op, tmp[0], partial)
		p.Put(win, 0, 0, tmp)
		p.Unlock(win, 0)
	}
	env.flush()
	p.Barrier() // all critical sections complete
	// Publish the combined value to every rank via the V-Bus broadcast.
	contrib := make([]float64, len(reds))
	if p.Rank() == 0 {
		for i, rs := range reds {
			contrib[i] = redWins[rs.red.Sym].Local(0)[0]
		}
	}
	total := p.Bcast(0, contrib)
	for i, rs := range reds {
		env.storage(rs.red.Sym, 0)[0] = total[i]
	}
}

// mpiOp maps the (homogeneous) reduction list onto an MPI op. The
// front end groups only identical operators per loop; mixing is a bug
// caught here.
func mpiOp(reds []redState) mpi.Op {
	op := reds[0].red.Op
	for _, r := range reds[1:] {
		if r.red.Op != op {
			panic(runtimeError{fmt.Errorf("interp: mixed reduction operators in one region")})
		}
	}
	switch op {
	case "+":
		return mpi.Sum
	case "*":
		return mpi.Prod
	case "MAX":
		return mpi.Max
	case "MIN":
		return mpi.Min
	default:
		panic(runtimeError{fmt.Errorf("interp: unknown reduction op %s", op)})
	}
}

func reductionIdentity(op string) float64 {
	switch op {
	case "+":
		return 0
	case "*":
		return 1
	case "MAX":
		return -1.7976931348623157e308
	case "MIN":
		return 1.7976931348623157e308
	default:
		panic(runtimeError{fmt.Errorf("interp: unknown reduction op %s", op)})
	}
}

func applyReduction(op string, a, b float64) float64 {
	switch op {
	case "+":
		return a + b
	case "*":
		return a * b
	case "MAX":
		if a > b {
			return a
		}
		return b
	case "MIN":
		if a < b {
			return a
		}
		return b
	default:
		panic(runtimeError{fmt.Errorf("interp: unknown reduction op %s", op)})
	}
}

// runPartition executes (or bulk-charges) the rank's share of a
// parallel loop under the region's schedule.
func (env *Env) runPartition(loop *f77.DoLoop, ctx analysis.LoopCtx, myTrips []int64) {
	env.charge(3 * env.cpu.IntOpTime)
	defer env.setInt(loop.Var, ctx.From+ctx.Trips()*ctx.Step, loop.Line())
	if len(myTrips) == 0 {
		return
	}
	// The generated SPMD code computes rank-dependent bounds and
	// offsets: slightly costlier per iteration, at every nest level,
	// than the original sequential loops.
	env.spmdTax = env.cpu.SPMDIterOverhead
	defer func() { env.spmdTax = 0 }()
	iterCost := env.cpu.LoopOverhead + env.spmdTax
	if env.mode == Timing && env.isBulkable(loop) {
		if !env.loopVarDependent(loop) {
			env.setInt(loop.Var, ctx.From, loop.Line())
			per := iterCost + env.stmtsCost(loop.Body)
			env.charge(sim.Time(len(myTrips)) * per)
			return
		}
		var total sim.Time
		for _, k := range myTrips {
			env.checkCancelled()
			env.setInt(loop.Var, ctx.From+k*ctx.Step, loop.Line())
			total += iterCost + env.stmtsCost(loop.Body)
		}
		env.charge(total)
		return
	}
	for _, k := range myTrips {
		env.checkCancelled()
		env.setInt(loop.Var, ctx.From+k*ctx.Step, loop.Line())
		env.charge(iterCost)
		c, _ := env.execStmts(loop.Body)
		if c != ctrlNormal {
			env.fail(loop.Line(), "control transfer out of a parallel loop")
		}
	}
}

// transferOps performs (or, in timing mode, charges) the rank's plans
// of all ops in one direction. scatter=true moves master→rank;
// otherwise the calling slave moves its regions to the master.
// Coarse-grain plans of the same array merge across ops into the "one
// big approximate region" of Figure 9(d).
func (env *Env) transferOps(p *mpi.Proc, wins map[*f77.Symbol]*mpi.Win, par *postpass.ParInfo, ops []*postpass.CommOp, rank int, scatter bool) {
	target := 0 // collects go to the master
	if scatter {
		target = rank
	}
	coarse := map[*f77.Symbol][]lmad.Transfer{}
	var coarseOrder []*f77.Symbol
	for _, op := range ops {
		plan := postpass.RankPlan(op, par.Ctx, rank, p.Size(), par.Schedule)
		if op.Grain == lmad.Coarse {
			if _, seen := coarse[op.Sym]; !seen {
				coarseOrder = append(coarseOrder, op.Sym)
			}
			coarse[op.Sym] = append(coarse[op.Sym], plan...)
			continue
		}
		env.execTransfers(p, wins[op.Sym], op.Sym, plan, target)
	}
	thr := rndvThreshold(ops)
	for _, sym := range coarseOrder {
		env.execTransfers(p, wins[sym], sym,
			lmad.MarkRendezvous(lmad.MergeContiguous(coarse[sym]), thr), target)
	}
}

// rndvThreshold is the eager/rendezvous stamp threshold to re-apply
// after coarse plans merge across ops: merging can grow a transfer past
// its pre-merge stamp, so the merged plan is re-stamped. The threshold
// is machine-global (every op of a coalesced compile carries the same
// value; unstamped ops carry 0), so the max over the list recovers it.
func rndvThreshold(ops []*postpass.CommOp) int64 {
	var thr int64
	for _, op := range ops {
		if op.RndvThreshold > thr {
			thr = op.RndvThreshold
		}
	}
	return thr
}

// rankPlans enumerates the per-op plans of one rank in deterministic
// order, with coarse-grain plans merged per array — the shared plan
// shape used by both the one-sided and two-sided paths (the two sides
// of a SEND/RECEIVE pair must enumerate identically).
func rankPlans(p *mpi.Proc, par *postpass.ParInfo, ops []*postpass.CommOp, rank int) []struct {
	sym  *f77.Symbol
	plan []lmad.Transfer
} {
	var out []struct {
		sym  *f77.Symbol
		plan []lmad.Transfer
	}
	coarse := map[*f77.Symbol][]lmad.Transfer{}
	var coarseOrder []*f77.Symbol
	for _, op := range ops {
		plan := postpass.RankPlan(op, par.Ctx, rank, p.Size(), par.Schedule)
		if op.Grain == lmad.Coarse {
			if _, seen := coarse[op.Sym]; !seen {
				coarseOrder = append(coarseOrder, op.Sym)
			}
			coarse[op.Sym] = append(coarse[op.Sym], plan...)
			continue
		}
		out = append(out, struct {
			sym  *f77.Symbol
			plan []lmad.Transfer
		}{op.Sym, plan})
	}
	thr := rndvThreshold(ops)
	for _, sym := range coarseOrder {
		out = append(out, struct {
			sym  *f77.Symbol
			plan []lmad.Transfer
		}{sym, lmad.MarkRendezvous(lmad.MergeContiguous(coarse[sym]), thr)})
	}
	return out
}

// sendOps is the two-sided sending half: pack each transfer of rank's
// plan and SEND it (tag identifies the peer pairing).
func (env *Env) sendOps(p *mpi.Proc, par *postpass.ParInfo, ops []*postpass.CommOp, rank, tag int) {
	for _, pl := range rankPlans(p, par, ops, rank) {
		dst := 0
		if p.Rank() == 0 {
			dst = rank
		}
		for _, tr := range pl.plan {
			if env.mode == Timing {
				p.SendRegion(dst, tag, int(tr.Elems), nil)
				continue
			}
			src := env.storage(pl.sym, 0)
			payload := make([]float64, tr.Elems)
			for i := range payload {
				payload[i] = src[tr.Offset+int64(i)*tr.Stride]
			}
			p.SendRegion(dst, tag, int(tr.Elems), payload)
		}
	}
}

// recvOps is the matching receiving half: receive each transfer of
// rank's plan (enumerated identically) and unpack it into storage.
func (env *Env) recvOps(p *mpi.Proc, par *postpass.ParInfo, ops []*postpass.CommOp, rank, tag int) {
	from := 0
	if p.Rank() == 0 {
		from = rank
	}
	for _, pl := range rankPlans(p, par, ops, rank) {
		for _, tr := range pl.plan {
			payload := p.RecvRegion(from, tag, int(tr.Elems))
			if env.mode == Timing || len(payload) == 0 {
				continue
			}
			buf := env.storage(pl.sym, 0)
			for i, v := range payload {
				buf[tr.Offset+int64(i)*tr.Stride] = v
			}
		}
	}
}

// pullOps is the GET-driven scatter: the calling slave fetches its
// plan's regions from the master's window into its own storage.
func (env *Env) pullOps(p *mpi.Proc, wins map[*f77.Symbol]*mpi.Win, par *postpass.ParInfo, ops []*postpass.CommOp, rank int) {
	for _, pl := range rankPlans(p, par, ops, rank) {
		win := wins[pl.sym]
		for _, tr := range pl.plan {
			d := mpi.DescFromTransfer(tr)
			d.Region = pl.sym.Name
			if env.mode == Timing {
				p.ChargePutD(0, d)
				continue
			}
			dst := env.storage(pl.sym, 0)
			if tr.Stride == 1 {
				p.GetD(win, 0, d, dst[tr.Offset:tr.Offset+tr.Elems])
			} else {
				tmp := make([]float64, tr.Elems)
				p.GetD(win, 0, d, tmp)
				for i, v := range tmp {
					dst[tr.Offset+int64(i)*tr.Stride] = v
				}
			}
		}
	}
}

func (env *Env) execTransfers(p *mpi.Proc, win *mpi.Win, sym *f77.Symbol, plan []lmad.Transfer, target int) {
	for _, tr := range plan {
		d := mpi.DescFromTransfer(tr)
		d.Region = sym.Name
		if env.mode == Timing {
			p.ChargePutD(target, d)
			continue
		}
		src := env.storage(sym, 0)
		if tr.Stride == 1 {
			p.PutD(win, target, d, src[tr.Offset:tr.Offset+tr.Elems])
		} else {
			tmp := make([]float64, tr.Elems)
			for i := range tmp {
				tmp[i] = src[tr.Offset+int64(i)*tr.Stride]
			}
			p.PutD(win, target, d, tmp)
		}
	}
}

// SortedArrayNames lists the arrays in a result for deterministic
// comparison output.
func (r *Result) SortedArrayNames() []string {
	names := make([]string, 0, len(r.Mem))
	for n := range r.Mem {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
