package interp

import (
	"context"
	"runtime"
	"sync"

	"vbuscluster/internal/cluster"
	"vbuscluster/internal/sim"
)

// RunConfig tunes how a parallel execution maps ranks onto goroutines.
type RunConfig struct {
	// Ctx, when non-nil, bounds the run: once it is cancelled (a job
	// deadline, an HTTP client abort) the MPI world is cancelled and
	// every rank unwinds with an mpi.ErrCancelled error instead of
	// running — or blocking — forever. Nil means no external bound,
	// exactly the pre-context behavior.
	Ctx context.Context
	// Workers bounds the number of rank goroutines executing
	// concurrently. Ranks blocked inside the runtime (receive waits,
	// collective rendezvous, contended window locks) park and release
	// their slot, so P ranks need only min(P, Workers) goroutine slots
	// plus the parked residue — the memory and scheduler pressure of a
	// 1024-rank run stays bounded. Zero (the default) uses
	// runtime.GOMAXPROCS(0); negative disables pooling entirely and
	// launches one free-running goroutine per rank (the pre-pool
	// behavior, kept as the equivalence-test reference). Results are
	// bit-identical across all settings: the pool only decides which
	// runnable goroutine proceeds when, never what it charges.
	Workers int
}

// effectiveWorkers resolves the Workers setting to a concrete pool
// size (callers have already excluded the negative "no pool" case).
func effectiveWorkers(w int) int {
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		return 1
	}
	return w
}

// pool is the bounded worker-slot scheduler behind RunConfig.Workers.
// Each rank goroutine acquires a slot before executing and releases it
// on exit; the mpi layer's Park/Unpark hooks release the slot while a
// rank is blocked inside the runtime. A freed slot is handed directly
// to the parked rank with the lowest (virtual clock, arrival) key —
// the furthest-behind rank resumes first, mirroring the engine's
// deterministic lowest-time-first discipline. That order is a
// throughput heuristic only: virtual results are identical whatever
// order slots are granted in.
type pool struct {
	cl *cluster.Cluster

	mu    sync.Mutex
	free  int
	queue *sim.ReadyQueue // parked ranks, keyed by virtual clock at park time
}

func newPool(cl *cluster.Cluster, workers int) *pool {
	if workers < 1 {
		workers = 1
	}
	return &pool{cl: cl, free: workers, queue: sim.NewReadyQueue()}
}

// acquire blocks until a worker slot is available. The rank's clock is
// sampled before taking the pool lock (the cluster has its own lock;
// the two are never nested).
func (s *pool) acquire(node int) {
	at := s.cl.Clock(node)
	s.mu.Lock()
	if s.free > 0 {
		s.free--
		s.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	s.queue.Push(at, ch)
	s.mu.Unlock()
	<-ch
}

// release frees a slot, handing it directly to the longest-behind
// parked rank if any is waiting. It never blocks, so it is safe to
// call with runtime-internal locks held (the Park contract).
func (s *pool) release() {
	s.mu.Lock()
	if v, ok := s.queue.Pop(); ok {
		s.mu.Unlock()
		close(v.(chan struct{}))
		return
	}
	s.free++
	s.mu.Unlock()
}

// Park and Unpark implement mpi.Scheduler: a rank blocking inside the
// runtime gives its slot away and reclaims one once runnable again.
func (s *pool) Park(node int) { s.release() }

func (s *pool) Unpark(node int) { s.acquire(node) }
