package interp

import (
	"math"

	"vbuscluster/internal/f77"
)

// evalF evaluates an expression as float64 with Fortran semantics:
// integer subexpressions use truncating arithmetic.
func (env *Env) evalF(e f77.Expr) float64 {
	if env.typeOf(e) == f77.TInteger {
		return float64(env.evalI(e))
	}
	switch x := e.(type) {
	case *f77.IntLit:
		return float64(x.Val)
	case *f77.RealLit:
		return x.Val
	case *f77.LogLit:
		if x.Val {
			return 1
		}
		return 0
	case *f77.VarExpr:
		if x.Sym.IsConst {
			return x.Sym.Const
		}
		return env.storage(x.Sym, 0)[0]
	case *f77.ArrayExpr:
		return env.storage(x.Sym, 0)[env.index(x.Sym, x.Subs, 0)]
	case *f77.Un:
		switch x.Op {
		case f77.OpNeg:
			return -env.evalF(x.X)
		case f77.OpPlus:
			return env.evalF(x.X)
		default:
			env.fail(0, "logical unary in arithmetic context")
		}
	case *f77.Bin:
		l, r := env.evalF(x.L), env.evalF(x.R)
		switch x.Op {
		case f77.OpAdd:
			return l + r
		case f77.OpSub:
			return l - r
		case f77.OpMul:
			return l * r
		case f77.OpDiv:
			return l / r
		case f77.OpPow:
			if env.typeOf(x.R) == f77.TInteger {
				return intPowF(l, env.evalI(x.R))
			}
			return math.Pow(l, r)
		default:
			env.fail(0, "relational operator in arithmetic context")
		}
	case *f77.CallExpr:
		return env.call(x)
	}
	env.fail(0, "unhandled expression %T", e)
	return 0
}

func intPowF(base float64, exp int64) float64 {
	if exp < 0 {
		return 1 / intPowF(base, -exp)
	}
	out := 1.0
	for ; exp > 0; exp >>= 1 {
		if exp&1 == 1 {
			out *= base
		}
		base *= base
	}
	return out
}

// evalI evaluates an integer expression with truncating division.
func (env *Env) evalI(e f77.Expr) int64 {
	switch x := e.(type) {
	case *f77.IntLit:
		return x.Val
	case *f77.RealLit:
		return int64(x.Val)
	case *f77.VarExpr:
		return env.getInt(x.Sym, 0)
	case *f77.ArrayExpr:
		return int64(env.storage(x.Sym, 0)[env.index(x.Sym, x.Subs, 0)])
	case *f77.Un:
		switch x.Op {
		case f77.OpNeg:
			return -env.evalI(x.X)
		case f77.OpPlus:
			return env.evalI(x.X)
		}
	case *f77.Bin:
		if env.typeOf(x.L).IsFloat() || env.typeOf(x.R).IsFloat() {
			return int64(env.evalF(e))
		}
		l, r := env.evalI(x.L), env.evalI(x.R)
		switch x.Op {
		case f77.OpAdd:
			return l + r
		case f77.OpSub:
			return l - r
		case f77.OpMul:
			return l * r
		case f77.OpDiv:
			if r == 0 {
				env.fail(0, "integer division by zero")
			}
			return l / r
		case f77.OpPow:
			out := int64(1)
			for i := int64(0); i < r; i++ {
				out *= l
			}
			return out
		}
	case *f77.CallExpr:
		return int64(env.call(x))
	}
	// Fall back through float evaluation (e.g. INT(REAL expr)).
	return int64(env.evalF(e))
}

// evalB evaluates a logical expression. LOGICAL variables store 1.0
// for .TRUE. and 0.0 for .FALSE. in their one-word cells.
func (env *Env) evalB(e f77.Expr) bool {
	switch x := e.(type) {
	case *f77.LogLit:
		return x.Val
	case *f77.VarExpr:
		if x.Sym.Type == f77.TLogical {
			return env.storage(x.Sym, 0)[0] != 0
		}
	case *f77.ArrayExpr:
		if x.Sym.Type == f77.TLogical {
			return env.storage(x.Sym, 0)[env.index(x.Sym, x.Subs, 0)] != 0
		}
	case *f77.Un:
		if x.Op == f77.OpNot {
			return !env.evalB(x.X)
		}
	case *f77.Bin:
		switch x.Op {
		case f77.OpAnd:
			return env.evalB(x.L) && env.evalB(x.R)
		case f77.OpOr:
			return env.evalB(x.L) || env.evalB(x.R)
		case f77.OpLT, f77.OpLE, f77.OpGT, f77.OpGE, f77.OpEQ, f77.OpNE:
			if env.typeOf(x.L) == f77.TInteger && env.typeOf(x.R) == f77.TInteger {
				l, r := env.evalI(x.L), env.evalI(x.R)
				switch x.Op {
				case f77.OpLT:
					return l < r
				case f77.OpLE:
					return l <= r
				case f77.OpGT:
					return l > r
				case f77.OpGE:
					return l >= r
				case f77.OpEQ:
					return l == r
				default:
					return l != r
				}
			}
			l, r := env.evalF(x.L), env.evalF(x.R)
			switch x.Op {
			case f77.OpLT:
				return l < r
			case f77.OpLE:
				return l <= r
			case f77.OpGT:
				return l > r
			case f77.OpGE:
				return l >= r
			case f77.OpEQ:
				return l == r
			default:
				return l != r
			}
		}
	}
	env.fail(0, "expression is not logical: %T", e)
	return false
}

// call evaluates an intrinsic or user function.
func (env *Env) call(x *f77.CallExpr) float64 {
	if x.Intrinsic {
		return env.intrinsic(x)
	}
	callee := env.prog.Lookup(x.Name)
	if callee == nil || callee.Kind != f77.KFunction {
		env.fail(0, "call of unknown function %s", x.Name)
	}
	env.charge(env.cpu.CallOverhead)
	frame := env.pushFrame(callee, x.Args, 0)
	defer env.popFrame(frame)
	env.execUnitBody(callee)
	result := env.storage(callee.Syms.Lookup(callee.Name), 0)[0]
	if callee.Result == f77.TInteger {
		result = float64(int64(result))
	}
	return result
}

func (env *Env) intrinsic(x *f77.CallExpr) float64 {
	a := func(i int) float64 { return env.evalF(x.Args[i]) }
	switch x.Name {
	case "ABS", "IABS":
		return math.Abs(a(0))
	case "SQRT":
		return math.Sqrt(a(0))
	case "EXP":
		return math.Exp(a(0))
	case "LOG", "ALOG":
		return math.Log(a(0))
	case "SIN":
		return math.Sin(a(0))
	case "COS":
		return math.Cos(a(0))
	case "TAN":
		return math.Tan(a(0))
	case "ATAN":
		return math.Atan(a(0))
	case "ATAN2":
		return math.Atan2(a(0), a(1))
	case "MOD":
		if env.typeOf(x.Args[0]) == f77.TInteger && env.typeOf(x.Args[1]) == f77.TInteger {
			m := env.evalI(x.Args[1])
			if m == 0 {
				env.fail(0, "MOD by zero")
			}
			return float64(env.evalI(x.Args[0]) % m)
		}
		return math.Mod(a(0), a(1))
	case "DMOD":
		return math.Mod(a(0), a(1))
	case "MIN", "MIN0", "AMIN1":
		out := a(0)
		for i := 1; i < len(x.Args); i++ {
			out = math.Min(out, a(i))
		}
		if x.Name == "MIN0" {
			return float64(int64(out))
		}
		return out
	case "MAX", "MAX0", "AMAX1":
		out := a(0)
		for i := 1; i < len(x.Args); i++ {
			out = math.Max(out, a(i))
		}
		if x.Name == "MAX0" {
			return float64(int64(out))
		}
		return out
	case "INT":
		return float64(int64(a(0)))
	case "NINT":
		return math.Round(a(0))
	case "REAL", "FLOAT", "DBLE":
		return a(0)
	case "SIGN":
		v, s := a(0), a(1)
		if s < 0 {
			return -math.Abs(v)
		}
		return math.Abs(v)
	}
	env.fail(0, "unhandled intrinsic %s", x.Name)
	return 0
}
