package interp

import (
	"math"
	"strings"
	"testing"

	"vbuscluster/internal/analysis"
	"vbuscluster/internal/cluster"
	"vbuscluster/internal/f77"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/postpass"
	"vbuscluster/internal/sim"
)

func compile(t *testing.T, src string) *f77.Program {
	t.Helper()
	prog, err := f77.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := analysis.FrontEnd(prog); err != nil {
		t.Fatalf("front end: %v", err)
	}
	return prog
}

func newCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	params := cluster.DefaultParams()
	if n > 4 {
		params.MeshWidth, params.MeshHeight = 4, 4
	}
	cl, err := cluster.New(n, params)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func runSeq(t *testing.T, src string, mode Mode) *Result {
	t.Helper()
	prog := compile(t, src)
	res, err := RunSequential(prog, newCluster(t, 1), mode)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	return res
}

func runPar(t *testing.T, src string, procs int, grain lmad.Grain, mode Mode) *Result {
	t.Helper()
	prog := compile(t, src)
	pp, err := postpass.Translate(prog, postpass.Options{NumProcs: procs, Grain: grain, LiveOutAll: true})
	if err != nil {
		t.Fatalf("postpass: %v", err)
	}
	res, err := RunParallel(pp, newCluster(t, procs), mode)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	return res
}

func sameArray(t *testing.T, name string, a, b []float64, tol float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(a[i])) {
			t.Fatalf("%s[%d]: %g vs %g", name, i, a[i], b[i])
		}
	}
}

// ---- Sequential evaluator correctness against native Go oracles ----

const mmN = 12

const mmSrc = `
      PROGRAM MM
      INTEGER N
      PARAMETER (N = 12)
      REAL A(N,N), B(N,N), C(N,N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          A(I,J) = REAL(I+J)
          B(I,J) = REAL(I-J)
          C(I,J) = 0.0
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = 1, N
          DO K = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      PRINT *, C(1,1)
      END
`

func goMM(n int) []float64 {
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	at := func(m []float64, i, j int) *float64 { return &m[(i-1)+(j-1)*n] } // column-major
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			*at(a, i, j) = float64(i + j)
			*at(b, i, j) = float64(i - j)
		}
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			for k := 1; k <= n; k++ {
				*at(c, i, j) += *at(a, i, k) * *at(b, k, j)
			}
		}
	}
	return c
}

func TestSequentialMMMatchesOracle(t *testing.T) {
	res := runSeq(t, mmSrc, Full)
	sameArray(t, "C", goMM(mmN), res.Mem["C"], 0)
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time charged")
	}
}

func TestSequentialPrintOutput(t *testing.T) {
	res := runSeq(t, mmSrc, Full)
	if !strings.Contains(res.Output, "\n") {
		t.Fatalf("no output: %q", res.Output)
	}
}

func TestIntegerSemantics(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER I, J
      REAL X(6)
      I = 7 / 2
      J = MOD(17, 5)
      X(1) = REAL(I)
      X(2) = REAL(J)
      X(3) = REAL(I**2)
      X(4) = 7.0 / 2.0
      X(5) = REAL(-7 / 2)
      X(6) = 2.0 ** (-1)
      END
`
	res := runSeq(t, src, Full)
	x := res.Mem["X"]
	want := []float64{3, 2, 9, 3.5, -3, 0.5}
	sameArray(t, "X", want, x, 1e-12)
}

func TestIntrinsicEvaluation(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(7)
      X(1) = SQRT(16.0)
      X(2) = ABS(-2.5)
      X(3) = MAX(1.0, 5.0, 3.0)
      X(4) = MIN(1.0, 5.0, 3.0)
      X(5) = SIN(0.0)
      X(6) = COS(0.0)
      X(7) = ATAN(1.0)
      END
`
	res := runSeq(t, src, Full)
	want := []float64{4, 2.5, 5, 1, 0, 1, math.Pi / 4}
	sameArray(t, "X", want, res.Mem["X"], 1e-12)
}

func TestGotoLoop(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER I
      REAL X
      I = 0
      X = 0.0
10    CONTINUE
      I = I + 1
      X = X + 2.0
      IF (I .LT. 5) GOTO 10
      END
`
	res := runSeq(t, src, Full)
	if res.Mem["X"][0] != 10.0 {
		t.Fatalf("X = %v", res.Mem["X"])
	}
}

func TestSubroutineCallByReference(t *testing.T) {
	// Direct execution (not inlined): function and subroutine calls
	// from sequential code.
	src := `
      PROGRAM P
      REAL A(5), S, TOTAL
      INTEGER I
      DO I = 1, 5
        A(I) = REAL(I)
      ENDDO
      S = 0.0
      CALL ACCUM(A, 5, S)
      TOTAL = TWICE(S)
      A(1) = TOTAL
      END

      SUBROUTINE ACCUM(V, N, OUT)
      INTEGER N, I
      REAL V(N), OUT
      DO I = 1, N
        OUT = OUT + V(I)
      ENDDO
      END

      REAL FUNCTION TWICE(X)
      REAL X
      TWICE = 2.0 * X
      END
`
	prog, err := f77.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Run WITHOUT the front end (no inlining) to exercise CALL frames.
	res, err := RunSequential(prog, newCluster(t, 1), Full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem["A"][0] != 30.0 {
		t.Fatalf("A(1) = %v, want 30", res.Mem["A"][0])
	}
}

func TestDataStatementApplied(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(4), X
      DATA A /4*2.5/, X /1.25/
      A(1) = A(2) + X
      END
`
	res := runSeq(t, src, Full)
	if res.Mem["A"][0] != 3.75 {
		t.Fatalf("A(1) = %v", res.Mem["A"][0])
	}
}

func TestStopHaltsProgram(t *testing.T) {
	src := `
      PROGRAM P
      REAL X
      X = 1.0
      STOP
      X = 2.0
      END
`
	res := runSeq(t, src, Full)
	if res.Mem["X"][0] != 1.0 {
		t.Fatal("STOP did not halt")
	}
}

func TestOutOfBoundsCaught(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(4)
      INTEGER I
      I = 9
      A(I) = 1.0
      END
`
	prog := compile(t, src)
	if _, err := RunSequential(prog, newCluster(t, 1), Full); err == nil {
		t.Fatal("out-of-bounds access not reported")
	}
}

// ---- Parallel == sequential (the core compiler-correctness gate) ----

func TestParallelMMMatchesSequentialAllGrainsAllProcs(t *testing.T) {
	oracle := goMM(mmN)
	for _, grain := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
		for _, procs := range []int{1, 2, 3, 4} {
			res := runPar(t, mmSrc, procs, grain, Full)
			sameArray(t, grain.String()+"/C", oracle, res.Mem["C"], 0)
		}
	}
}

func TestParallelReduction(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 37)
      REAL A(N), S
      INTEGER I
      DO I = 1, N
        A(I) = REAL(I)
      ENDDO
      S = 100.0
      DO I = 1, N
        S = S + A(I)
      ENDDO
      A(1) = S
      PRINT *, S
      END
`
	want := 100.0 + 37.0*38.0/2.0
	seq := runSeq(t, src, Full)
	if seq.Mem["A"][0] != want {
		t.Fatalf("sequential S = %v, want %v", seq.Mem["A"][0], want)
	}
	for _, procs := range []int{1, 2, 4} {
		res := runPar(t, src, procs, lmad.Coarse, Full)
		if math.Abs(res.Mem["A"][0]-want) > 1e-9 {
			t.Fatalf("procs=%d: S = %v, want %v", procs, res.Mem["A"][0], want)
		}
	}
}

func TestParallelMaxReduction(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 50)
      REAL A(N), S
      INTEGER I
      DO I = 1, N
        A(I) = REAL(MOD(I*7, 31))
      ENDDO
      S = -1.0
      DO I = 1, N
        S = MAX(S, A(I))
      ENDDO
      A(1) = S
      END
`
	seq := runSeq(t, src, Full)
	par := runPar(t, src, 4, lmad.Fine, Full)
	if seq.Mem["A"][0] != par.Mem["A"][0] {
		t.Fatalf("max reduction diverged: %v vs %v", seq.Mem["A"][0], par.Mem["A"][0])
	}
}

func TestParallelPrivatizedTemp(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 24)
      REAL A(N), T
      INTEGER I
      DO I = 1, N
        A(I) = REAL(I)
      ENDDO
      DO I = 1, N
        T = A(I) * 2.0
        A(I) = T + 1.0
      ENDDO
      PRINT *, A(N)
      END
`
	seq := runSeq(t, src, Full)
	par := runPar(t, src, 3, lmad.Coarse, Full)
	sameArray(t, "A", seq.Mem["A"], par.Mem["A"], 0)
}

func TestParallelTriangularCyclic(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 15)
      REAL A(N,N)
      INTEGER I, J
      DO I = 1, N
        DO J = 1, N
          A(I,J) = 0.0
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = I, N
          A(J,I) = REAL(I*100 + J)
        ENDDO
      ENDDO
      PRINT *, A(1,1)
      END
`
	seq := runSeq(t, src, Full)
	for _, procs := range []int{2, 4} {
		par := runPar(t, src, procs, lmad.Fine, Full)
		sameArray(t, "A", seq.Mem["A"], par.Mem["A"], 0)
	}
}

func TestParallelScalarBroadcast(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 16)
      REAL A(N), X
      INTEGER I
      X = 2.5
      DO I = 1, N
        A(I) = X * REAL(I)
      ENDDO
      PRINT *, A(N)
      END
`
	seq := runSeq(t, src, Full)
	par := runPar(t, src, 4, lmad.Fine, Full)
	sameArray(t, "A", seq.Mem["A"], par.Mem["A"], 0)
}

func TestParallelStride2(t *testing.T) {
	// The CFFT2INIT access shape: interleaved stride-2 writes.
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 32)
      REAL W(2*N)
      INTEGER I
      DO I = 1, N
        W(2*I-1) = REAL(I)
        W(2*I) = REAL(-I)
      ENDDO
      PRINT *, W(1)
      END
`
	seq := runSeq(t, src, Full)
	for _, grain := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
		par := runPar(t, src, 4, grain, Full)
		sameArray(t, "W/"+grain.String(), seq.Mem["W"], par.Mem["W"], 0)
	}
}

func TestParallelInlinedSubroutine(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 20)
      REAL A(N)
      CALL FILL(A, N)
      PRINT *, A(1)
      END
      SUBROUTINE FILL(V, M)
      INTEGER M, I
      REAL V(M)
      DO I = 1, M
        V(I) = REAL(I) * 3.0
      ENDDO
      END
`
	seq := runSeq(t, src, Full)
	par := runPar(t, src, 4, lmad.Coarse, Full)
	sameArray(t, "A", seq.Mem["A"], par.Mem["A"], 0)
}

func TestSequentialFallbackRegion(t *testing.T) {
	// A recurrence stays sequential inside the SPMD program but must
	// still compute correctly (master executes it).
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 16)
      REAL A(N)
      INTEGER I
      DO I = 1, N
        A(I) = 1.0
      ENDDO
      DO I = 2, N
        A(I) = A(I-1) + A(I)
      ENDDO
      PRINT *, A(N)
      END
`
	seq := runSeq(t, src, Full)
	par := runPar(t, src, 4, lmad.Fine, Full)
	sameArray(t, "A", seq.Mem["A"], par.Mem["A"], 0)
	if seq.Mem["A"][15] != 16.0 {
		t.Fatalf("prefix sum wrong: %v", seq.Mem["A"][15])
	}
}

// ---- Timing mode ----

func TestTimingModeMatchesFullModeTime(t *testing.T) {
	full := runSeq(t, mmSrc, Full)
	timing := runSeq(t, mmSrc, Timing)
	if full.Elapsed != timing.Elapsed {
		t.Fatalf("timing mode diverged: full %v vs timing %v", full.Elapsed, timing.Elapsed)
	}
}

func TestTimingModeParallelMatchesFull(t *testing.T) {
	for _, grain := range []lmad.Grain{lmad.Fine, lmad.Coarse} {
		full := runPar(t, mmSrc, 4, grain, Full)
		timing := runPar(t, mmSrc, 4, grain, Timing)
		if full.Elapsed != timing.Elapsed {
			t.Fatalf("grain %v: full %v vs timing %v", grain, full.Elapsed, timing.Elapsed)
		}
		if full.Report.MaxCommTime() != timing.Report.MaxCommTime() {
			t.Fatalf("grain %v comm: full %v vs timing %v", grain, full.Report.MaxCommTime(), timing.Report.MaxCommTime())
		}
	}
}

// ---- Shape of the results (mini Table 1) ----

func TestSpeedupGrowsWithProcs(t *testing.T) {
	bigMM := strings.Replace(mmSrc, "N = 12", "N = 64", 1)
	seq := runSeq(t, bigMM, Timing)
	var prev float64
	for _, procs := range []int{1, 2, 4} {
		par := runPar(t, bigMM, procs, lmad.Coarse, Timing)
		speedup := float64(seq.Elapsed) / float64(par.Elapsed)
		if speedup <= prev {
			t.Fatalf("speedup not increasing: %d procs → %.3f (prev %.3f)", procs, speedup, prev)
		}
		prev = speedup
	}
	if prev < 1.5 {
		t.Fatalf("4-proc speedup %.3f too low", prev)
	}
}

func TestSingleProcOverheadSmall(t *testing.T) {
	bigMM := strings.Replace(mmSrc, "N = 12", "N = 64", 1)
	seq := runSeq(t, bigMM, Timing)
	par := runPar(t, bigMM, 1, lmad.Coarse, Timing)
	ratio := float64(seq.Elapsed) / float64(par.Elapsed)
	if ratio >= 1.0 {
		t.Fatalf("1-proc SPMD should be slower than pure sequential (ratio %.3f)", ratio)
	}
	if ratio < 0.80 {
		t.Fatalf("1-proc SPMD overhead too large (ratio %.3f)", ratio)
	}
}

func TestCommTimeAccounted(t *testing.T) {
	res := runPar(t, mmSrc, 4, lmad.Fine, Full)
	if res.Report.MaxCommTime() <= 0 {
		t.Fatal("no communication time recorded")
	}
	if res.Report.TotalCommBytes() <= 0 {
		t.Fatal("no bytes recorded")
	}
}

func TestMasterOutputOnly(t *testing.T) {
	res := runPar(t, mmSrc, 4, lmad.Fine, Full)
	lines := strings.Count(res.Output, "\n")
	if lines != 1 {
		t.Fatalf("expected exactly one PRINT line from the master, got %d:\n%s", lines, res.Output)
	}
}

// §3's lock-based reduction combining must agree with the Allreduce
// scheme and with the sequential result (up to FP reassociation).
func TestLockedReductionsMatch(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 41)
      REAL A(N), S, M
      INTEGER I
      DO I = 1, N
        A(I) = REAL(MOD(I*13, 17)) - 8.0
      ENDDO
      S = 5.0
      M = -1000.0
      DO I = 1, N
        S = S + A(I)
      ENDDO
      DO I = 1, N
        M = MAX(M, A(I))
      ENDDO
      A(1) = S
      A(2) = M
      END
`
	seq := runSeq(t, src, Full)
	prog := compile(t, src)
	for _, procs := range []int{1, 2, 4} {
		pp, err := postpass.Translate(prog, postpass.Options{
			NumProcs: procs, Grain: lmad.Coarse, LiveOutAll: true, LockReductions: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunParallel(pp, newCluster(t, procs), Full)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Mem["A"][0]-seq.Mem["A"][0]) > 1e-9 {
			t.Fatalf("procs=%d locked sum = %v, want %v", procs, res.Mem["A"][0], seq.Mem["A"][0])
		}
		if res.Mem["A"][1] != seq.Mem["A"][1] {
			t.Fatalf("procs=%d locked max = %v, want %v", procs, res.Mem["A"][1], seq.Mem["A"][1])
		}
	}
}

// The locked scheme serializes on the master: with growing P its
// combine cost should exceed the tree-based Allreduce's.
func TestLockedReductionsCostMore(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 64)
      REAL A(N), S
      INTEGER I
      DO I = 1, N
        A(I) = 1.0
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + A(I)
      ENDDO
      A(1) = S
      END
`
	prog := compile(t, src)
	run := func(lock bool) sim.Time {
		pp, err := postpass.Translate(prog, postpass.Options{
			NumProcs: 4, Grain: lmad.Coarse, LiveOutAll: true, LockReductions: lock,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunParallel(pp, newCluster(t, 4), Timing)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	locked, tree := run(true), run(false)
	if locked <= tree {
		t.Fatalf("locked combine (%v) should cost more than the Allreduce tree (%v)", locked, tree)
	}
}

// The two-sided (MPI-1 SEND/RECEIVE) baseline must compute identical
// results; on contiguous transfer plans it must cost more than the
// one-sided DMA path (pack + unpack + both processors involved -- the
// §2.2 motivation for implementing MPI-2). Strided plans are the one
// case where two-sided can win, because one-sided strided PUT pays the
// programmed-I/O per-element cost while a send packs with plain memory
// copies; the MM correctness check below covers that path too.
func TestTwoSidedMatchesAndCostsMore(t *testing.T) {
	prog := compile(t, mmSrc)
	oracle := goMM(mmN)
	ppTwo, err := postpass.Translate(prog, postpass.Options{
		NumProcs: 4, Grain: lmad.Coarse, LiveOutAll: true, TwoSided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	two, err := RunParallel(ppTwo, newCluster(t, 4), Full)
	if err != nil {
		t.Fatal(err)
	}
	sameArray(t, "C/two-sided", oracle, two.Mem["C"], 0)

	// Contiguous-plan workload: block-partitioned 1-D elementwise.
	contigSrc := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 4096)
      REAL A(N), B(N)
      INTEGER I
      DO I = 1, N
        B(I) = REAL(I)
      ENDDO
      DO I = 1, N
        A(I) = B(I) * 2.0
      ENDDO
      PRINT *, A(1)
      END
`
	cprog := compile(t, contigSrc)
	run := func(twoSided bool) sim.Time {
		pp, err := postpass.Translate(cprog, postpass.Options{
			NumProcs: 4, Grain: lmad.Coarse, LiveOutAll: true, TwoSided: twoSided,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunParallel(pp, newCluster(t, 4), Timing)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.TotalXferTime()
	}
	one, twoT := run(false), run(true)
	if twoT <= one {
		t.Fatalf("two-sided comm (%v) should exceed one-sided (%v) on contiguous plans", twoT, one)
	}
}

func TestTwoSidedAllGrains(t *testing.T) {
	prog := compile(t, mmSrc)
	oracle := goMM(mmN)
	for _, grain := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
		for _, procs := range []int{2, 3} {
			pp, err := postpass.Translate(prog, postpass.Options{
				NumProcs: procs, Grain: grain, LiveOutAll: true, TwoSided: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunParallel(pp, newCluster(t, procs), Full)
			if err != nil {
				t.Fatal(err)
			}
			sameArray(t, grain.String(), oracle, res.Mem["C"], 0)
		}
	}
}

// Downward loops: DO I = N, 1, -1 with independent writes must
// parallelize and partition correctly.
func TestParallelDownwardLoop(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 30)
      REAL A(N)
      INTEGER I
      DO I = N, 1, -1
        A(I) = REAL(I) * 3.0
      ENDDO
      PRINT *, A(1)
      END
`
	seq := runSeq(t, src, Full)
	for _, grain := range []lmad.Grain{lmad.Fine, lmad.Coarse} {
		for _, procs := range []int{2, 4} {
			par := runPar(t, src, procs, grain, Full)
			sameArray(t, "A down "+grain.String(), seq.Mem["A"], par.Mem["A"], 0)
		}
	}
}

// Reversed coefficient: A(N-I+1) maps loop trip k to lattice position
// trips-1-k; the block partition must mirror (postpass CommOp.Reversed).
func TestParallelReversedSubscript(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 32)
      REAL A(N), B(N)
      INTEGER I
      DO I = 1, N
        B(I) = REAL(I)
      ENDDO
      DO I = 1, N
        A(N-I+1) = B(I) * 2.0
      ENDDO
      PRINT *, A(1)
      END
`
	seq := runSeq(t, src, Full)
	if seq.Mem["A"][31] != 2.0 { // A(32) = B(1)*2
		t.Fatalf("oracle wrong: %v", seq.Mem["A"][31])
	}
	for _, grain := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
		for _, procs := range []int{2, 3, 4} {
			par := runPar(t, src, procs, grain, Full)
			sameArray(t, "A rev "+grain.String(), seq.Mem["A"], par.Mem["A"], 0)
		}
	}
}

// Reversed coefficient under a cyclic (triangular) schedule falls back
// to replicated scatters; collects demote via the race check. Either
// way the values must be right.
func TestReversedWithCyclicSchedule(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 18)
      REAL A(N,N)
      INTEGER I, J
      DO I = 1, N
        DO J = 1, N
          A(I,J) = 0.0
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = I, N
          A(J, N-I+1) = REAL(I*100 + J)
        ENDDO
      ENDDO
      PRINT *, A(1,N)
      END
`
	seq := runSeq(t, src, Full)
	for _, procs := range []int{2, 4} {
		par := runPar(t, src, procs, lmad.Coarse, Full)
		sameArray(t, "A revcyc", seq.Mem["A"], par.Mem["A"], 0)
	}
}

// A parallel loop whose subscripts step by the loop's own stride:
// DO I = 1, N, 4 touching A(I..I+2) — partitions must respect gaps.
func TestParallelStriddenLoop(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 40)
      REAL A(N+2)
      INTEGER I
      DO I = 1, N+2
        A(I) = -1.0
      ENDDO
      DO I = 1, N, 4
        A(I) = 1.0
        A(I+1) = 2.0
        A(I+2) = 3.0
      ENDDO
      PRINT *, A(1)
      END
`
	seq := runSeq(t, src, Full)
	for _, grain := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
		par := runPar(t, src, 4, grain, Full)
		sameArray(t, "A strided-loop "+grain.String(), seq.Mem["A"], par.Mem["A"], 0)
	}
}

// Per-region profiling (§5.6's profiling-tools capability): region
// times must sum to the total and identify the comm-heavy regions.
func TestRegionProfile(t *testing.T) {
	res := runPar(t, mmSrc, 4, lmad.Fine, Full)
	if len(res.Regions) != 3 {
		t.Fatalf("regions = %d, want 3 (init, compute, print)", len(res.Regions))
	}
	if !res.Regions[0].Parallel || !res.Regions[1].Parallel || res.Regions[2].Parallel {
		t.Fatalf("region kinds wrong: %+v", res.Regions)
	}
	var sum sim.Time
	var comm sim.Time
	for _, r := range res.Regions {
		if r.Elapsed < 0 || r.Comm < 0 {
			t.Fatalf("negative profile entry: %+v", r)
		}
		sum += r.Elapsed
		comm += r.Comm
	}
	// Window creation happens before region 0, so regions account for
	// slightly less than the whole run.
	if sum > res.Elapsed {
		t.Fatalf("region elapsed sum %v exceeds total %v", sum, res.Elapsed)
	}
	if float64(sum) < 0.9*float64(res.Elapsed) {
		t.Fatalf("regions account for too little: %v of %v", sum, res.Elapsed)
	}
	if comm != res.Report.TotalXferTime() {
		t.Fatalf("region comm sum %v != total %v", comm, res.Report.TotalXferTime())
	}
	// The compute region (RW C scatter+collect) communicates most.
	if res.Regions[1].Comm <= res.Regions[2].Comm {
		t.Fatal("compute region should out-communicate the print region")
	}
	out := FormatRegions(res.Regions)
	if !strings.Contains(out, "DO I") || !strings.Contains(out, "sequential") {
		t.Fatalf("profile render:\n%s", out)
	}
}

func TestSequentialRunHasNoRegionProfile(t *testing.T) {
	res := runSeq(t, mmSrc, Full)
	if res.Regions != nil {
		t.Fatal("sequential run should not carry a region profile")
	}
}

// COMMON blocks: storage shared between units by position, both under
// direct CALL execution and through inlining + SPMD translation.
func TestCommonBlockSharedStorage(t *testing.T) {
	src := `
      PROGRAM P
      REAL TOTAL, V(5)
      COMMON /ACC/ TOTAL, V
      INTEGER I
      TOTAL = 0.0
      DO I = 1, 5
        V(I) = REAL(I)
      ENDDO
      CALL BUMP
      CALL BUMP
      V(1) = TOTAL
      END

      SUBROUTINE BUMP
      REAL T, W(5)
      COMMON /ACC/ T, W
      INTEGER I
      DO I = 1, 5
        T = T + W(I)
      ENDDO
      END
`
	// Direct execution (no inlining).
	prog, err := f77.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSequential(prog, newCluster(t, 1), Full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem["V"][0] != 30.0 { // two passes of sum 1..5
		t.Fatalf("direct COMMON total = %v, want 30", res.Mem["V"][0])
	}
	// Inlined + SPMD execution.
	seq := runSeq(t, src, Full)
	if seq.Mem["TOTAL"][0] != 30.0 {
		t.Fatalf("inlined COMMON total = %v", seq.Mem["TOTAL"][0])
	}
	par := runPar(t, src, 2, lmad.Coarse, Full)
	if par.Mem["TOTAL"][0] != 30.0 {
		t.Fatalf("SPMD COMMON total = %v", par.Mem["TOTAL"][0])
	}
}

func TestCommonLayoutMismatchRejected(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(4)
      COMMON /B/ A
      CALL S
      END
      SUBROUTINE S
      REAL X(9)
      COMMON /B/ X
      X(1) = 1.0
      END
`
	prog, err := f77.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := analysis.FrontEnd(prog); err == nil {
		t.Fatal("mismatched COMMON layouts accepted by the inliner")
	}
	// Direct execution must also refuse.
	prog2, _ := f77.Parse(src)
	if _, err := RunSequential(prog2, newCluster(t, 1), Full); err == nil {
		t.Fatal("mismatched COMMON layouts accepted by the interpreter")
	}
}

func TestCommonParallelLoopOverBlockArray(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 40)
      REAL G(N)
      COMMON /GRID/ G
      CALL INIT
      PRINT *, G(N)
      END
      SUBROUTINE INIT
      INTEGER N, I
      PARAMETER (N = 40)
      REAL G(N)
      COMMON /GRID/ G
      DO I = 1, N
        G(I) = REAL(I) * 1.5
      ENDDO
      END
`
	seq := runSeq(t, src, Full)
	par := runPar(t, src, 4, lmad.Fine, Full)
	sameArray(t, "G", seq.Mem["G"], par.Mem["G"], 0)
	if seq.Mem["G"][39] != 60.0 {
		t.Fatalf("G(40) = %v", seq.Mem["G"][39])
	}
}

// GET-driven (pull) scatter: identical results, and the scatter
// parallelizes across slaves instead of serializing on the master —
// the §2.2 point that either end can drive a one-sided transfer.
func TestPullScatterMatchesAndParallelizes(t *testing.T) {
	prog := compile(t, mmSrc)
	oracle := goMM(mmN)
	run := func(pull bool, mode Mode) *Result {
		pp, err := postpass.Translate(prog, postpass.Options{
			NumProcs: 4, Grain: lmad.Coarse, LiveOutAll: true, PullScatter: pull,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunParallel(pp, newCluster(t, 4), mode)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pull := run(true, Full)
	sameArray(t, "C/pull", oracle, pull.Mem["C"], 0)
	// Wall-clock: pulling overlaps the three slaves' transfers; pushing
	// serializes them on the master. Elapsed must improve.
	push := run(false, Timing)
	pullT := run(true, Timing)
	if pullT.Elapsed >= push.Elapsed {
		t.Fatalf("pull scatter (%v) should beat push scatter (%v)", pullT.Elapsed, push.Elapsed)
	}
}

func TestPullScatterAllGrains(t *testing.T) {
	prog := compile(t, mmSrc)
	oracle := goMM(mmN)
	for _, grain := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
		pp, err := postpass.Translate(prog, postpass.Options{
			NumProcs: 3, Grain: grain, LiveOutAll: true, PullScatter: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunParallel(pp, newCluster(t, 3), Full)
		if err != nil {
			t.Fatal(err)
		}
		sameArray(t, "C/pull/"+grain.String(), oracle, res.Mem["C"], 0)
	}
}

// Coverage sweep: logical expressions, Prod/Min reductions, triangular
// bulk costing, and reversed bulk loops.
func TestLogicalExpressionEvaluation(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(8)
      LOGICAL L
      INTEGER I
      DO I = 1, 8
        A(I) = REAL(I)
      ENDDO
      L = .TRUE.
      IF (L .AND. .NOT. .FALSE.) A(1) = -1.0
      IF (L .OR. .FALSE.) A(2) = -2.0
      IF (A(3) .NE. 3.0) A(3) = 0.0
      IF (3 .EQ. 3 .AND. 2 .LE. 2 .AND. 4 .GE. 3 .AND. 1 .LT. 2) THEN
        A(4) = -4.0
      ENDIF
      END
`
	res := runSeq(t, src, Full)
	want := []float64{-1, -2, 3, -4, 5, 6, 7, 8}
	sameArray(t, "A", want, res.Mem["A"], 0)
}

func TestProdAndMinReductions(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 10)
      REAL A(N), PR, MN
      INTEGER I
      DO I = 1, N
        A(I) = 1.0 + REAL(I) * 0.1
      ENDDO
      PR = 1.0
      MN = 1.0E30
      DO I = 1, N
        PR = PR * A(I)
      ENDDO
      DO I = 1, N
        MN = MIN(MN, A(I))
      ENDDO
      A(1) = PR
      A(2) = MN
      END
`
	seq := runSeq(t, src, Full)
	for _, lock := range []bool{false, true} {
		prog := compile(t, src)
		pp, err := postpass.Translate(prog, postpass.Options{
			NumProcs: 4, Grain: lmad.Fine, LiveOutAll: true, LockReductions: lock,
		})
		if err != nil {
			t.Fatal(err)
		}
		par, err := RunParallel(pp, newCluster(t, 4), Full)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(par.Mem["A"][0]-seq.Mem["A"][0]) > 1e-9 {
			t.Fatalf("lock=%v product = %v, want %v", lock, par.Mem["A"][0], seq.Mem["A"][0])
		}
		if par.Mem["A"][1] != seq.Mem["A"][1] {
			t.Fatalf("lock=%v min = %v, want %v", lock, par.Mem["A"][1], seq.Mem["A"][1])
		}
	}
}

func TestTriangularBulkCostMatchesFull(t *testing.T) {
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N = 20)
      REAL A(N,N)
      INTEGER I, J
      DO I = 1, N
        DO J = I, N
          A(J,I) = REAL(I+J)
        ENDDO
      ENDDO
      PRINT *, A(N,1)
      END
`
	full := runSeq(t, src, Full)
	timing := runSeq(t, src, Timing)
	if full.Elapsed != timing.Elapsed {
		t.Fatalf("triangular bulk cost %v != full %v", timing.Elapsed, full.Elapsed)
	}
}

func TestDownwardBulkCostMatchesFull(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(30)
      INTEGER I
      DO I = 30, 1, -1
        A(I) = REAL(I)
      ENDDO
      END
`
	full := runSeq(t, src, Full)
	timing := runSeq(t, src, Timing)
	if full.Elapsed != timing.Elapsed {
		t.Fatalf("downward bulk %v != full %v", timing.Elapsed, full.Elapsed)
	}
}

func TestIntrinsicsBroadCoverage(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(10)
      X(1) = EXP(0.0) + LOG(1.0) + ALOG(1.0)
      X(2) = TAN(0.0) + ATAN2(0.0, 1.0)
      X(3) = SIGN(3.0, -2.0)
      X(4) = MOD(7.5, 2.0)
      X(5) = DMOD(9.0, 4.0)
      X(6) = NINT(2.6)
      X(7) = REAL(MIN0(4, 2, 9))
      X(8) = REAL(MAX0(4, 2, 9))
      X(9) = AMIN1(1.5, 0.5)
      X(10) = AMAX1(1.5, 0.5)
      END
`
	res := runSeq(t, src, Full)
	want := []float64{1, 0, -3, 1.5, 1, 3, 2, 9, 0.5, 1.5}
	sameArray(t, "X", want, res.Mem["X"], 1e-12)
}

func TestModeString(t *testing.T) {
	if Full.String() != "full" || Timing.String() != "timing" {
		t.Fatal("mode strings")
	}
}

func TestSortedArrayNames(t *testing.T) {
	res := runSeq(t, mmSrc, Full)
	names := res.SortedArrayNames()
	if len(names) == 0 {
		t.Fatal("no names")
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("not sorted")
		}
	}
}

// A GOTO whose target is a top-level label must force whole-program
// sequential execution (a cross-region jump would otherwise escape the
// barrier-per-region structure) — and still compute correctly.
func TestTopLevelGotoForcesSequential(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(20), S
      INTEGER I, PASS
      PASS = 0
      S = 0.0
5     CONTINUE
      PASS = PASS + 1
      DO I = 1, 20
        A(I) = REAL(I) * REAL(PASS)
      ENDDO
      IF (PASS .LT. 3) GOTO 5
      DO I = 1, 20
        S = S + A(I)
      ENDDO
      A(1) = S
      END
`
	seq := runSeq(t, src, Full)
	prog := compile(t, src)
	pp, err := postpass.Translate(prog, postpass.Options{NumProcs: 4, Grain: lmad.Coarse, LiveOutAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.Regions) != 1 || pp.Regions[0].Par != nil {
		t.Fatalf("cross-region GOTO should force one sequential region, got %d regions", len(pp.Regions))
	}
	par, err := RunParallel(pp, newCluster(t, 4), Full)
	if err != nil {
		t.Fatal(err)
	}
	sameArray(t, "A", seq.Mem["A"], par.Mem["A"], 0)
	if seq.Mem["A"][0] != 3.0*20*21/2 {
		t.Fatalf("oracle: %v", seq.Mem["A"][0])
	}
}

// STOP inside a sequential region of the SPMD program must halt every
// rank cleanly (via the halt broadcast) with regions before the STOP
// completed and regions after it skipped.
func TestStopInSPMDProgram(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(16), B(16)
      INTEGER I
      DO I = 1, 16
        A(I) = REAL(I)
        B(I) = 0.0
      ENDDO
      STOP
      DO I = 1, 16
        B(I) = 99.0
      ENDDO
      END
`
	for _, procs := range []int{1, 3} {
		par := runPar(t, src, procs, lmad.Fine, Full)
		for i := 0; i < 16; i++ {
			if par.Mem["A"][i] != float64(i+1) {
				t.Fatalf("procs=%d: A not computed before STOP", procs)
			}
			if par.Mem["B"][i] != 0.0 {
				t.Fatalf("procs=%d: region after STOP executed: B[%d]=%v", procs, i, par.Mem["B"][i])
			}
		}
	}
}
