package interp

import (
	"fmt"

	"vbuscluster/internal/f77"
)

// ctrl is the statement-level control-flow outcome.
type ctrl int

const (
	ctrlNormal ctrl = iota
	ctrlReturn
	ctrlStop
	ctrlJump
)

// execStmts runs a statement list, resolving GOTO targets within the
// list and propagating unresolved jumps upward.
func (env *Env) execStmts(stmts []f77.Stmt) (ctrl, int) {
	i := 0
	for i < len(stmts) {
		c, target := env.execStmt(stmts[i])
		switch c {
		case ctrlNormal:
			i++
		case ctrlJump:
			found := -1
			for j, s := range stmts {
				if s.Label() == target {
					found = j
					break
				}
			}
			if found < 0 {
				return ctrlJump, target
			}
			i = found
		default:
			return c, 0
		}
	}
	return ctrlNormal, 0
}

func (env *Env) execStmt(s f77.Stmt) (ctrl, int) {
	switch x := s.(type) {
	case *f77.Assign:
		env.charge(env.assignCost(x))
		env.execAssign(x)
		return ctrlNormal, 0
	case *f77.ContinueStmt:
		return ctrlNormal, 0
	case *f77.DoLoop:
		return env.execLoop(x)
	case *f77.IfBlock:
		for k, cond := range x.Conds {
			env.charge(env.exprCost(cond))
			if env.evalB(cond) {
				return env.execStmts(x.Blocks[k])
			}
		}
		return env.execStmts(x.Else)
	case *f77.Goto:
		env.charge(env.cpu.IntOpTime)
		return ctrlJump, x.Target
	case *f77.CallStmt:
		env.execCall(x)
		return ctrlNormal, 0
	case *f77.ReturnStmt:
		return ctrlReturn, 0
	case *f77.StopStmt:
		return ctrlStop, 0
	case *f77.PrintStmt:
		env.charge(env.cpu.CallOverhead)
		if env.mode == Full && env.out != nil {
			env.execPrint(x)
		}
		return ctrlNormal, 0
	default:
		env.fail(s.Line(), "unhandled statement %T", s)
		return ctrlNormal, 0
	}
}

func (env *Env) execAssign(x *f77.Assign) {
	sym := x.LHS.Sym
	buf := env.storage(sym, x.Line())
	var idx int64
	if len(x.LHS.Subs) > 0 {
		idx = env.index(sym, x.LHS.Subs, x.Line())
	}
	var v float64
	if env.typeOf(x.RHS) == f77.TLogical && sym.Type == f77.TLogical {
		if env.evalB(x.RHS) {
			v = 1
		}
		buf[idx] = v
		return
	}
	if sym.Type == f77.TInteger {
		if env.typeOf(x.RHS) == f77.TInteger {
			v = float64(env.evalI(x.RHS))
		} else {
			v = float64(int64(env.evalF(x.RHS))) // REAL→INTEGER truncates
		}
	} else {
		v = env.evalF(x.RHS)
	}
	buf[idx] = v
}

func (env *Env) execLoop(x *f77.DoLoop) (ctrl, int) {
	env.charge(3 * env.cpu.IntOpTime) // bound evaluation
	if env.mode == Timing && env.isBulkable(x) {
		from, to, step, trips := env.loopBounds(x)
		env.charge(env.bulkLoopCost(x, from, to, step, trips))
		// The loop variable's post-loop value per the Fortran standard.
		env.setInt(x.Var, from+trips*step, x.Line())
		return ctrlNormal, 0
	}
	from, _, step, trips := env.loopBounds(x)
	v := from
	for k := int64(0); k < trips; k++ {
		env.setInt(x.Var, v, x.Line())
		env.charge(env.cpu.LoopOverhead + env.spmdTax)
		c, target := env.execStmts(x.Body)
		switch c {
		case ctrlReturn, ctrlStop:
			return c, 0
		case ctrlJump:
			return ctrlJump, target // jump out of the loop
		}
		v += step
	}
	env.setInt(x.Var, v, x.Line())
	return ctrlNormal, 0
}

func (env *Env) loopBounds(x *f77.DoLoop) (from, to, step, trips int64) {
	from, to = env.evalI(x.From), env.evalI(x.To)
	step = 1
	if x.Step != nil {
		step = env.evalI(x.Step)
	}
	if step == 0 {
		env.fail(x.Line(), "DO step is zero")
	}
	trips = (to-from)/step + 1
	if trips < 0 {
		trips = 0
	}
	return from, to, step, trips
}

// frame saves symbol bindings shadowed by a CALL.
type frame struct {
	unit  *f77.Unit
	saved map[*f77.Symbol][]float64
}

// pushFrame binds a callee's dummies and locals. Whole-variable actuals
// alias (Fortran passes by reference); array-element actuals alias the
// tail slice (sequence association); expression actuals materialize
// into a one-element temporary.
func (env *Env) pushFrame(callee *f77.Unit, args []f77.Expr, line int) *frame {
	fr := &frame{unit: callee, saved: map[*f77.Symbol][]float64{}}
	for _, sym := range callee.Syms.Order {
		fr.saved[sym] = env.mem[sym]
	}
	// Evaluate actual bindings in the caller's frame first.
	bind := make([][]float64, len(args))
	for i, actual := range args {
		switch a := actual.(type) {
		case *f77.VarExpr:
			bind[i] = env.storage(a.Sym, line)
		case *f77.ArrayExpr:
			buf := env.storage(a.Sym, line)
			bind[i] = buf[env.index(a.Sym, a.Subs, line):]
		default:
			dummy := callee.Params[i]
			var v float64
			if dummy.Type == f77.TInteger {
				v = float64(env.evalI(actual))
			} else {
				v = env.evalF(actual)
			}
			bind[i] = []float64{v}
		}
	}
	for i, dummy := range callee.Params {
		env.mem[dummy] = bind[i]
	}
	// Locals allocate fresh (dims may reference just-bound dummies);
	// COMMON members bind to the shared block storage instead.
	for _, sym := range callee.Syms.Order {
		if sym.IsArg || sym.IsConst {
			continue
		}
		if sym.Common != "" {
			buf, err := env.commonSlot(sym)
			if err != nil {
				env.fail(line, "%v", err)
			}
			env.mem[sym] = buf
			continue
		}
		if !sym.IsArray() {
			env.mem[sym] = make([]float64, 1)
			continue
		}
		size := int64(1)
		for _, d := range sym.Dims {
			low := int64(1)
			if d.Low != nil {
				low = env.evalI(d.Low)
			}
			if d.High == nil {
				env.fail(line, "local array %s of %s has assumed size", sym.Name, callee.Name)
			}
			size *= env.evalI(d.High) - low + 1
		}
		env.mem[sym] = make([]float64, size)
	}
	env.applyDataInits(callee)
	return fr
}

func (env *Env) popFrame(fr *frame) {
	for sym, old := range fr.saved {
		if old == nil {
			delete(env.mem, sym)
		} else {
			env.mem[sym] = old
		}
	}
}

func (env *Env) execCall(x *f77.CallStmt) {
	callee := env.prog.Lookup(x.Name)
	if callee == nil || callee.Kind != f77.KSubroutine {
		env.fail(x.Line(), "CALL of unknown subroutine %s", x.Name)
	}
	env.charge(env.cpu.CallOverhead)
	fr := env.pushFrame(callee, x.Args, x.Line())
	defer env.popFrame(fr)
	env.execUnitBody(callee)
}

// stopSignal unwinds the interpreter on STOP; run boundaries treat it
// as clean termination.
type stopSignal struct{}

// execUnitBody runs a unit's statements, swallowing RETURN. STOP
// unwinds to the nearest run boundary via stopSignal.
func (env *Env) execUnitBody(u *f77.Unit) {
	c, target := env.execStmts(u.Body)
	if c == ctrlJump {
		env.fail(0, "GOTO %d has no target in %s", target, u.Name)
	}
	if c == ctrlStop {
		panic(stopSignal{})
	}
}

func (env *Env) execPrint(x *f77.PrintStmt) {
	parts := make([]any, 0, len(x.Args))
	for _, a := range x.Args {
		switch v := a.(type) {
		case *f77.StrLit:
			parts = append(parts, v.Val)
		default:
			if env.typeOf(a) == f77.TInteger {
				parts = append(parts, env.evalI(a))
			} else {
				parts = append(parts, env.evalF(a))
			}
		}
	}
	fmt.Fprintln(env.out, parts...)
}
