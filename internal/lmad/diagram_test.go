package lmad

import (
	"strings"
	"testing"
)

func TestDiagramFigure2(t *testing.T) {
	// DO i=1,11,2: A(i) → filled cells at 0,2,4,6,8,10.
	l := New("A", 0).WithDim(2, 10)
	d := l.Diagram(12)
	lines := strings.Split(d, "\n")
	if lines[0] != "A^{2}_{10}+0" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "■□■□■□■□■□■□" {
		t.Fatalf("cells = %q", lines[1])
	}
}

func TestDiagramDefaultsToHigh(t *testing.T) {
	l := New("A", 1).WithDim(3, 6)
	d := l.Diagram(0)
	row := strings.Split(d, "\n")[1]
	if len([]rune(row)) != 8 {
		t.Fatalf("auto-sized row = %q", row)
	}
}

func TestDiagramTruncation(t *testing.T) {
	l := New("A", 0).WithDim(1, 99)
	d := l.Diagram(10)
	if !strings.Contains(d, "…") {
		t.Fatalf("truncation marker missing:\n%s", d)
	}
}

func TestDiagramTransfersShowsRedundancy(t *testing.T) {
	// Figure 9(c): stride-3 region approximated by a dense run — the
	// gaps ship as redundant cells.
	l := New("A", 0).WithDim(3, 9)
	d := DiagramTransfers(l, Plan(l, 0, Middle), 12)
	if !strings.Contains(d, "■") || !strings.Contains(d, "▒") {
		t.Fatalf("middle-grain diagram should mix exact and redundant cells:\n%s", d)
	}
	// Fine grain ships exactly the accesses: no redundant cells.
	fine := DiagramTransfers(l, Plan(l, 0, Fine), 12)
	if strings.Contains(fine, "▒") {
		t.Fatalf("fine-grain diagram has redundancy:\n%s", fine)
	}
}
