package lmad

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Figure 2 of the paper: DO i=1,11,2 accessing A(i) — stride 2, six
// accesses (offsets 0,2,...,10 with A(1) at offset 0).
func TestFigure2ConstantStride(t *testing.T) {
	l := New("A", 0).WithDim(2, 10)
	got := l.Enumerate(100)
	want := []int64{0, 2, 4, 6, 8, 10}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("enumerate = %v, want %v", got, want)
	}
	if l.Count() != 6 {
		t.Fatalf("count = %d", l.Count())
	}
}

// Figure 3: DO i=1,4 accessing A(i*2-1) — the subscript 2i-1 gives a
// consistent stride of 2 even though the value changes.
func TestFigure3VariantSubscript(t *testing.T) {
	// A(1), A(3), A(5), A(7) → offsets 0,2,4,6.
	l := New("A", 0).WithDim(2, 6)
	got := l.Enumerate(100)
	want := []int64{0, 2, 4, 6}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("enumerate = %v, want %v", got, want)
	}
}

// Figure 4: REAL A(14,*) accessed as A(K, J+26*(I-1)) under
// DO I=1,2 / DO J=1,2 / DO K=1,10,3. Column-major linearization gives
// stride 3 span 9 for K, stride 14 span 14 for J, stride 364 span 364
// for I.
func TestFigure4NestedLMAD(t *testing.T) {
	l := New("A", 0).
		WithDim(14*26, 14*26). // I
		WithDim(14, 14).       // J
		WithDim(3, 9)          // K
	if l.Count() != 2*2*4 {
		t.Fatalf("count = %d, want 16", l.Count())
	}
	got := l.Enumerate(1000)
	// Spot-check the paper's diagram: first row of accesses at
	// 0,3,6,9 then the J step lands at 14.
	for _, off := range []int64{0, 3, 6, 9, 14, 17, 364, 378} {
		found := false
		for _, g := range got {
			if g == off {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("offset %d missing from %v", off, got)
		}
	}
	if l.String() != "A^{364,14,3}_{364,14,9}+0" {
		t.Fatalf("written form = %s", l.String())
	}
}

func TestWithDimNormalization(t *testing.T) {
	// Zero-trip and zero-stride dims vanish.
	l := New("A", 5).WithDim(0, 0).WithDim(3, 0)
	if l.Rank() != 0 {
		t.Fatalf("rank = %d", l.Rank())
	}
	// Negative stride flips to positive with adjusted offset.
	l = New("A", 10).WithDim(-2, -6)
	if l.Offset != 4 || l.Dims[0].Stride != 2 || l.Dims[0].Span != 6 {
		t.Fatalf("normalized = %+v", l)
	}
	// Ragged span rounds down to a whole number of strides.
	l = New("A", 0).WithDim(3, 10)
	if l.Dims[0].Span != 9 {
		t.Fatalf("span = %d, want 9", l.Dims[0].Span)
	}
}

func TestMismatchedSignsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative stride with positive span did not panic")
		}
	}()
	New("A", 0).WithDim(-2, 6)
}

func TestLowHigh(t *testing.T) {
	l := New("A", 7).WithDim(10, 30).WithDim(1, 4)
	if l.Low() != 7 || l.High() != 41 {
		t.Fatalf("bounds = [%d,%d]", l.Low(), l.High())
	}
}

func TestCoalesceDenseRows(t *testing.T) {
	// 5 rows of 10 contiguous elements, rows 10 apart: one dense run.
	l := New("A", 0).WithDim(10, 40).WithDim(1, 9)
	c := l.Coalesce()
	if !c.IsContiguous() {
		t.Fatalf("coalesced = %+v not contiguous", c)
	}
	if c.High() != 49 {
		t.Fatalf("high = %d", c.High())
	}
}

func TestCoalesceDoesNotMergeGapped(t *testing.T) {
	// Rows 12 apart with runs of 10: gaps of 2 remain.
	l := New("A", 0).WithDim(12, 48).WithDim(1, 9)
	if l.Coalesce().IsContiguous() {
		t.Fatal("gapped rows wrongly coalesced")
	}
}

func TestCoalescePreservesAccessSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := New("A", int64(rng.Intn(50)))
		for d := 0; d < rng.Intn(3)+1; d++ {
			stride := int64(rng.Intn(6) + 1)
			trips := int64(rng.Intn(5) + 1)
			l = l.WithDim(stride, stride*(trips-1))
		}
		a := l.Enumerate(1 << 16)
		b := l.Coalesce().Enumerate(1 << 16)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateLimitPanics(t *testing.T) {
	l := New("A", 0).WithDim(1, 1<<20)
	defer func() {
		if recover() == nil {
			t.Fatal("limit not enforced")
		}
	}()
	l.Enumerate(10)
}

func TestEnumerateDedups(t *testing.T) {
	// Two dims generating overlapping addresses: 0,1,2 + 0,1 →
	// {0,1,2,3}.
	l := New("A", 0).WithDim(1, 2).WithDim(1, 1)
	got := l.Enumerate(100)
	want := []int64{0, 1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("enumerate = %v", got)
	}
}

func TestOverlapExact(t *testing.T) {
	evens := New("A", 0).WithDim(2, 20)
	odds := New("A", 1).WithDim(2, 20)
	if Overlap(evens, odds, 1000) {
		t.Fatal("disjoint interleaved sets reported overlapping")
	}
	if !Overlap(evens, evens, 1000) {
		t.Fatal("identical sets reported disjoint")
	}
	shifted := New("A", 2).WithDim(2, 20)
	if !Overlap(evens, shifted, 1000) {
		t.Fatal("intersecting sets reported disjoint")
	}
}

func TestOverlapDisjointIntervals(t *testing.T) {
	a := New("A", 0).WithDim(1, 9)
	b := New("A", 100).WithDim(1, 9)
	if Overlap(a, b, 10) {
		t.Fatal("far-apart intervals overlap")
	}
	if BoundsOverlap(a, b) {
		t.Fatal("bounds overlap")
	}
}

func TestOverlapRank1ExactEvenWhenHuge(t *testing.T) {
	// Rank-1 lattices go through the CRT fast path, which is exact at
	// any size: interleaved even/odd lattices never intersect.
	evens := New("A", 0).WithDim(2, 1<<30)
	odds := New("A", 1).WithDim(2, 1<<30)
	if Overlap(evens, odds, 100) {
		t.Fatal("CRT path missed the parity disjointness")
	}
}

func TestOverlapConservativeFallback(t *testing.T) {
	// Huge rank-2 interleaved sets exceed the enumeration limit: the
	// conservative answer must be true (never a false negative).
	a := New("A", 0).WithDim(1<<20, 1<<30).WithDim(2, 1<<18)
	b := New("A", 1).WithDim(1<<20, 1<<30).WithDim(2, 1<<18)
	if !Overlap(a, b, 100) {
		t.Fatal("conservative fallback returned false")
	}
}

// Property: Overlap with enumeration agrees with brute-force set
// intersection.
func TestOverlapProperty(t *testing.T) {
	gen := func(rng *rand.Rand) LMAD {
		l := New("A", int64(rng.Intn(30)))
		for d := 0; d < rng.Intn(2)+1; d++ {
			stride := int64(rng.Intn(5) + 1)
			trips := int64(rng.Intn(6) + 1)
			l = l.WithDim(stride, stride*(trips-1))
		}
		return l
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := gen(rng), gen(rng)
		got := Overlap(a, b, 1<<16)
		want := false
		bs := map[int64]bool{}
		for _, o := range b.Enumerate(1 << 16) {
			bs[o] = true
		}
		for _, o := range a.Enumerate(1 << 16) {
			if bs[o] {
				want = true
				break
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTranslate(t *testing.T) {
	l := New("A", 5).WithDim(2, 6)
	m := l.Translate(10)
	if m.Offset != 15 || l.Offset != 5 {
		t.Fatal("translate wrong or mutated the original")
	}
}

func TestStringForm(t *testing.T) {
	if s := New("B", 3).String(); s != "B+3" {
		t.Fatalf("scalar form = %s", s)
	}
	l := New("A", 0).WithDim(10, 20).WithDim(1, 4)
	if l.String() != "A^{10,1}_{20,4}+0" {
		t.Fatalf("form = %s", l.String())
	}
}

func TestRestrictDim(t *testing.T) {
	// 8 rows of a stride-10 dimension; take rows 2..5 (4 trips).
	l := New("A", 5).WithDim(10, 70).WithDim(1, 3)
	r := l.RestrictDim(0, 2, 4)
	if r.Offset != 25 || r.Dims[0].Span != 30 {
		t.Fatalf("restricted = %+v", r)
	}
	if r.Count() != 16 {
		t.Fatalf("count = %d", r.Count())
	}
	// Single-trip restriction drops the dimension.
	one := l.RestrictDim(0, 3, 1)
	if one.Rank() != 1 || one.Offset != 35 {
		t.Fatalf("single-trip = %+v", one)
	}
}

func TestRestrictDimBoundsPanic(t *testing.T) {
	l := New("A", 0).WithDim(10, 70)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range restriction accepted")
		}
	}()
	l.RestrictDim(0, 5, 5)
}

// The rank-1 CRT fast path must agree with brute force on random
// lattices.
func TestLattice1OverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() LMAD {
			l := New("A", int64(rng.Intn(40)))
			if rng.Intn(4) > 0 {
				stride := int64(rng.Intn(7) + 1)
				trips := int64(rng.Intn(10) + 1)
				l = l.WithDim(stride, stride*(trips-1))
			}
			return l
		}
		a, b := mk(), mk()
		got := Overlap(a, b, 1<<16)
		bs := map[int64]bool{}
		for _, o := range b.Enumerate(1 << 16) {
			bs[o] = true
		}
		for _, o := range a.Enumerate(1 << 16) {
			if bs[o] {
				return got == true
			}
		}
		return got == false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
