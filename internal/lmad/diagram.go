package lmad

import (
	"fmt"
	"strings"
)

// Diagram renders the paper's memory access diagrams (Figures 2, 3, 4,
// 8 and 9): a row of memory cells with the accessed elements filled.
//
//	A^{2}_{10}+0 over 14 cells:
//	  ■ □ ■ □ ■ □ ■ □ ■ □ ■ □ □ □
//
// cells bounds the rendered window; accesses beyond it are elided with
// an ellipsis. The element width is one glyph.
func (l LMAD) Diagram(cells int) string {
	if cells <= 0 {
		cells = int(l.High()) + 1
	}
	marks := make([]bool, cells)
	truncated := false
	if l.Count() <= 1<<16 {
		for _, off := range l.Enumerate(1 << 16) {
			if off >= 0 && off < int64(cells) {
				marks[off] = true
			} else {
				truncated = true
			}
		}
	} else {
		truncated = true
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", l.String())
	for _, m := range marks {
		if m {
			sb.WriteString("■")
		} else {
			sb.WriteString("□")
		}
	}
	if truncated {
		sb.WriteString("…")
	}
	sb.WriteByte('\n')
	// Offset ruler every 5 cells, matching the paper's tick style.
	for i := 0; i < cells; i += 5 {
		tick := fmt.Sprintf("%-5d", i)
		if i+5 > cells {
			tick = tick[:cells-i]
		}
		sb.WriteString(tick)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// DiagramTransfers renders a communication plan over a memory window,
// like Figure 9's dashed boxes: '■' for transferred-and-needed cells,
// '▒' for redundant cells a transfer ships (approximate regions), '□'
// for untouched memory.
func DiagramTransfers(l LMAD, plan []Transfer, cells int) string {
	if cells <= 0 {
		cells = int(l.High()) + 1
	}
	const (
		empty = iota
		redundant
		exact
	)
	marks := make([]int, cells)
	for _, tr := range plan {
		for i := int64(0); i < tr.Elems; i++ {
			off := tr.Offset + i*tr.Stride
			if off >= 0 && off < int64(cells) {
				marks[off] = redundant
			}
		}
	}
	if l.Count() <= 1<<16 {
		for _, off := range l.Enumerate(1 << 16) {
			if off >= 0 && off < int64(cells) && marks[off] != empty {
				marks[off] = exact
			}
		}
	}
	var sb strings.Builder
	for _, m := range marks {
		switch m {
		case exact:
			sb.WriteString("■")
		case redundant:
			sb.WriteString("▒")
		default:
			sb.WriteString("□")
		}
	}
	sb.WriteByte('\n')
	return sb.String()
}
