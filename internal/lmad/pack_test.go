package lmad

import "testing"

// MarkPacked is a pure transport-path annotation: it must never lose,
// reorder or reshape transfers, and it must mark exactly the strided
// transfers at or past the threshold.
func TestMarkPackedPreservesShape(t *testing.T) {
	mkPlan := func() []Transfer {
		return []Transfer{
			{Offset: 0, Elems: 64, Stride: 1},   // contiguous: never packed
			{Offset: 3, Elems: 10, Stride: 4},   // strided, below threshold
			{Offset: 1, Elems: 100, Stride: 3},  // strided, at/past threshold
			{Offset: 7, Elems: 0, Stride: 5},    // empty
			{Offset: 2, Elems: 4096, Stride: 2}, // strided, far past threshold
		}
	}
	orig := mkPlan()
	got := MarkPacked(mkPlan(), 100)
	if len(got) != len(orig) {
		t.Fatalf("plan length changed: %d -> %d", len(orig), len(got))
	}
	for i := range got {
		if got[i].Offset != orig[i].Offset || got[i].Elems != orig[i].Elems || got[i].Stride != orig[i].Stride {
			t.Errorf("transfer %d reshaped: %+v -> %+v", i, orig[i], got[i])
		}
		wantPacked := orig[i].Stride > 1 && orig[i].Elems >= 100
		if got[i].Packed != wantPacked {
			t.Errorf("transfer %d packed=%v, want %v", i, got[i].Packed, wantPacked)
		}
	}
	st := Stats(LMAD{}, got)
	if st.PackedMsgs != 2 {
		t.Errorf("PackedMsgs = %d, want 2", st.PackedMsgs)
	}
}

// threshold <= 0 means the coalesce stage is off: the plan must come
// back with no transfer marked.
func TestMarkPackedOffLeavesPlanUntouched(t *testing.T) {
	for _, th := range []int64{0, -1} {
		plan := MarkPacked([]Transfer{
			{Offset: 0, Elems: 1 << 20, Stride: 7},
			{Offset: 5, Elems: 8, Stride: 1},
		}, th)
		for i, tr := range plan {
			if tr.Packed {
				t.Errorf("threshold %d: transfer %d marked packed", th, i)
			}
		}
	}
}
