package lmad

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryAddAndClassify(t *testing.T) {
	s := NewSummary()
	s.Add(WriteFirst, New("A", 0).WithDim(1, 9))
	s.Add(ReadOnly, New("B", 0).WithDim(1, 9))
	s.Add(WriteFirst, New("A", 0).WithDim(1, 9)) // duplicate
	if len(s.Sets[WriteFirst]) != 1 {
		t.Fatal("duplicate not dropped")
	}
	if got := s.Arrays(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("arrays = %v", got)
	}
	if len(s.Writes()) != 1 || len(s.Reads()) != 1 {
		t.Fatal("writes/reads wrong")
	}
}

// Figure 5's structure: integrating statement summaries into loop
// summaries; a region written in one statement and read in another
// (overlapping bounds) becomes ReadWrite.
func TestMergePromotesConflicts(t *testing.T) {
	s1 := NewSummary()
	s1.Add(WriteFirst, New("A", 0).WithDim(1, 99))
	s2 := NewSummary()
	s2.Add(ReadOnly, New("A", 50).WithDim(1, 99))
	s1.Merge(s2)
	if len(s1.Sets[ReadWrite]) != 2 {
		t.Fatalf("conflicting accesses not promoted: %s", s1)
	}
	if len(s1.Sets[WriteFirst]) != 0 || len(s1.Sets[ReadOnly]) != 0 {
		t.Fatalf("stale classifications remain: %s", s1)
	}
}

func TestMergeKeepsDisjoint(t *testing.T) {
	s1 := NewSummary()
	s1.Add(WriteFirst, New("A", 0).WithDim(1, 9))
	s2 := NewSummary()
	s2.Add(ReadOnly, New("A", 100).WithDim(1, 9))
	s1.Merge(s2)
	if len(s1.Sets[ReadWrite]) != 0 {
		t.Fatal("disjoint regions wrongly promoted")
	}
}

func TestMergeDifferentArraysNoConflict(t *testing.T) {
	s1 := NewSummary()
	s1.Add(WriteFirst, New("A", 0).WithDim(1, 9))
	s2 := NewSummary()
	s2.Add(ReadOnly, New("B", 0).WithDim(1, 9))
	s1.Merge(s2)
	if len(s1.Sets[ReadWrite]) != 0 {
		t.Fatal("different arrays wrongly promoted")
	}
}

// Definition 2 / Figure 8: splitting off the lowest dimension.
func TestSplit(t *testing.T) {
	l := New("A", 0).WithDim(24, 24).WithDim(14, 14).WithDim(3, 9)
	offsets, mapping := Split(l)
	if mapping.Stride != 3 || mapping.Span != 9 {
		t.Fatalf("mapping = %+v", mapping)
	}
	if offsets.Rank() != 2 {
		t.Fatalf("offsets rank = %d", offsets.Rank())
	}
	// The paper's offset lattice: 0*14+0*24, 1*14+0*24, 0*14+1*24,
	// 1*14+1*24 = {0, 14, 24, 38}.
	got := offsets.Enumerate(100)
	want := []int64{0, 14, 24, 38}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("offset lattice = %v, want %v", got, want)
		}
	}
}

func TestSplitScalar(t *testing.T) {
	offsets, mapping := Split(New("X", 42))
	if offsets.Offset != 42 || offsets.Rank() != 0 {
		t.Fatalf("offsets = %+v", offsets)
	}
	if mapping.Trips() != 1 {
		t.Fatalf("mapping = %+v", mapping)
	}
}

// Figure 9: a stride-3 innermost region at the three granularities.
func TestPlanGranularities(t *testing.T) {
	// Innermost stride 3, 4 accesses per row; 2 rows 24 apart.
	l := New("A", 0).WithDim(24, 24).WithDim(3, 9)

	fine := Plan(l, 0, Fine)
	if len(fine) != 2 {
		t.Fatalf("fine messages = %d", len(fine))
	}
	for _, tr := range fine {
		if tr.Stride != 3 || tr.Elems != 4 {
			t.Fatalf("fine transfer = %+v", tr)
		}
	}

	middle := Plan(l, 0, Middle)
	if len(middle) != 2 {
		t.Fatalf("middle messages = %d", len(middle))
	}
	for _, tr := range middle {
		if tr.Stride != 1 || tr.Elems != 10 {
			t.Fatalf("middle transfer = %+v (want dense 10-element run)", tr)
		}
	}

	coarse := Plan(l, 0, Coarse)
	if len(coarse) != 1 {
		t.Fatalf("coarse messages = %d, want one bounding box", len(coarse))
	}
	if coarse[0].Offset != 0 || coarse[0].Elems != 34 || coarse[0].Stride != 1 {
		t.Fatalf("coarse transfer = %+v, want dense [0,33]", coarse[0])
	}
}

// The paper's message-count formulas: fine/middle send
// prod(trips of offset dims) messages; coarse sends trips(parallel dim).
func TestPlanMessageCounts(t *testing.T) {
	// 3 dims: I (parallel, 4 trips), J (5 trips), K innermost (7 trips).
	l := New("A", 0).WithDim(1000, 3000).WithDim(50, 200).WithDim(2, 12)
	if n := len(Plan(l, 0, Fine)); n != 4*5 {
		t.Fatalf("fine count = %d, want 20", n)
	}
	if n := len(Plan(l, 0, Middle)); n != 4*5 {
		t.Fatalf("middle count = %d, want 20", n)
	}
	if n := len(Plan(l, 0, Coarse)); n != 1 {
		t.Fatalf("coarse count = %d, want 1 (one box per processor)", n)
	}
}

// Coarse-grain regions are supersets: every fine element must appear in
// some coarse transfer (DESIGN.md invariant).
func TestCoarseCoversFine(t *testing.T) {
	l := New("A", 5).WithDim(100, 300).WithDim(7, 21)
	coarse := Plan(l, 0, Coarse)
	covered := func(off int64) bool {
		for _, tr := range coarse {
			if off >= tr.Offset && off < tr.Offset+tr.Elems {
				return true
			}
		}
		return false
	}
	for _, off := range l.Enumerate(1 << 16) {
		if !covered(off) {
			t.Fatalf("element %d not covered by coarse plan", off)
		}
	}
}

func TestMiddleCoversFine(t *testing.T) {
	l := New("A", 0).WithDim(40, 120).WithDim(3, 9)
	middle := Plan(l, 0, Middle)
	covered := func(off int64) bool {
		for _, tr := range middle {
			if off >= tr.Offset && off < tr.Offset+tr.Elems {
				return true
			}
		}
		return false
	}
	for _, off := range l.Enumerate(1 << 16) {
		if !covered(off) {
			t.Fatalf("element %d not covered by middle plan", off)
		}
	}
}

func TestPlanInvariantDescriptor(t *testing.T) {
	// Replicated data (parallelDim = -1) at coarse grain: one bounding
	// transfer.
	l := New("B", 10).WithDim(5, 20)
	plan := Plan(l, -1, Coarse)
	if len(plan) != 1 || plan[0].Offset != 10 || plan[0].Elems != 21 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestStats(t *testing.T) {
	l := New("A", 0).WithDim(24, 24).WithDim(3, 9)
	st := Stats(l, Plan(l, 0, Middle))
	if st.Messages != 2 || st.StridedMsgs != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Elements != 20 || st.ExactElements != 8 {
		t.Fatalf("redundancy accounting wrong: %+v", st)
	}
	stF := Stats(l, Plan(l, 0, Fine))
	if stF.StridedMsgs != 2 || stF.Elements != 8 {
		t.Fatalf("fine stats = %+v", stF)
	}
}

func TestParseGrain(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Grain
	}{{"fine", Fine}, {"Middle", Middle}, {"COARSE", Coarse}} {
		g, err := ParseGrain(c.in)
		if err != nil || g != c.want {
			t.Fatalf("ParseGrain(%q) = %v, %v", c.in, g, err)
		}
	}
	if _, err := ParseGrain("nope"); err == nil {
		t.Fatal("bad grain accepted")
	}
}

func TestSummaryString(t *testing.T) {
	s := NewSummary()
	s.Add(WriteFirst, New("A", 0).WithDim(1, 9))
	s.Add(ReadOnly, New("B", 4).WithDim(2, 8))
	out := s.String()
	if !strings.Contains(out, "WriteFirst: A^{1}_{9}+0") || !strings.Contains(out, "ReadOnly: B^{2}_{8}+4") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestMergeContiguous(t *testing.T) {
	plan := []Transfer{
		{Offset: 10, Elems: 5, Stride: 1},
		{Offset: 0, Elems: 4, Stride: 1},
		{Offset: 4, Elems: 4, Stride: 1},  // adjacent to [0,4)
		{Offset: 12, Elems: 6, Stride: 1}, // overlaps [10,15)
		{Offset: 100, Elems: 3, Stride: 7},
	}
	got := MergeContiguous(plan)
	if len(got) != 3 {
		t.Fatalf("merged = %+v", got)
	}
	if got[0].Offset != 0 || got[0].Elems != 8 {
		t.Fatalf("first run = %+v", got[0])
	}
	if got[1].Offset != 10 || got[1].Elems != 8 {
		t.Fatalf("second run = %+v", got[1])
	}
	if got[2].Stride != 7 {
		t.Fatal("strided transfer lost")
	}
}

func TestMergeContiguousEmpty(t *testing.T) {
	if got := MergeContiguous(nil); len(got) != 0 {
		t.Fatalf("merge of nothing = %+v", got)
	}
}

// DESIGN.md §7: the split LMADs reconstruct the original — the offsets
// lattice crossed with the mapping dimension enumerates exactly the
// descriptor's access set, for random descriptors.
func TestSplitReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := seed
		rand := func(mod int64) int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := (rng >> 33) % mod
			if v < 0 {
				v += mod
			}
			return v
		}
		l := New("A", rand(40))
		dims := rand(3) + 1
		for d := int64(0); d < dims; d++ {
			stride := rand(7) + 1
			trips := rand(6) + 1
			l = l.WithDim(stride, stride*(trips-1))
		}
		offsets, mapping := Split(l)
		rebuilt := map[int64]bool{}
		for _, off := range offsets.Enumerate(1 << 16) {
			for k := int64(0); k <= mapping.Span; k += mapping.Stride {
				rebuilt[off+k] = true
			}
		}
		want := l.Enumerate(1 << 16)
		if int64(len(rebuilt)) != int64(len(want)) {
			return false
		}
		for _, o := range want {
			if !rebuilt[o] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
