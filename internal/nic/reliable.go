package nic

// This file is the reliable transport: the link-level reliability
// protocol of the V-Bus card under fault injection. Every message is
// segmented into MTU-sized packets, each carrying a CRC-32C frame
// check sequence (internal/fabric). The receiver ACKs clean packets
// and NACKs corrupt ones; lost packets are discovered by ACK timeout.
// Recovery is go-back-N: a failed packet is retransmitted together
// with the window of packets streamed behind it, after an
// exponentially growing backoff.
//
// Like the rest of the NIC layer this is a *cost model*: it does not
// move bytes, it prices the retries so the MPI runtime can charge them
// to virtual clocks. The base (fault-free) transfer cost is charged by
// the caller exactly as on a clean fabric; ReliableCost returns only
// the overhead, so a run with no injected faults is bit-identical to a
// build without the reliability layer.

import (
	"vbuscluster/internal/fault"
	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
)

// Outcome is the priced result of reliably transferring one message.
type Outcome struct {
	// Extra is the virtual time the retries cost the sender on top of
	// the clean transfer: detection latencies, backoff waits and
	// retransmission wire time.
	Extra sim.Time
	// RetransBytes counts the bytes re-sent on the wire (go-back-N
	// resends whole windows, so this exceeds the corrupted bytes).
	RetransBytes int64
	// Retransmissions counts failed packet transmission attempts.
	Retransmissions int
	// Escalations counts packets that exhausted the retry budget and
	// were recovered by a link-level reset (the final resend always
	// succeeds, so payload delivery is guaranteed).
	Escalations int
}

// backoffShiftCap bounds the exponential backoff doubling so the wait
// cannot overflow virtual time even at absurd retry counts.
const backoffShiftCap = 16

// ReliableCost prices the reliable transfer of bytes from node src to
// node dst across hops mesh channels under inj's fault schedule.
// seqBase is the first per-(src,dst) packet sequence number of this
// message; the second return value is the number of sequence numbers
// consumed. The decision for every (packet, attempt) pair is a pure
// hash of the injector seed, so the outcome is identical across runs
// and independent of goroutine interleaving.
func ReliableCost(card interconnect.Interconnect, inj *fault.Injector,
	src, dst, hops, bytes, seqBase int) (Outcome, int) {

	var out Outcome
	if bytes <= 0 {
		return out, 0
	}
	mtu := inj.MTU()
	npkts := (bytes + mtu - 1) / mtu
	if !inj.Enabled() {
		return out, npkts
	}
	window := inj.Window()
	maxRetry := inj.MaxRetry()
	backoff := inj.Backoff()
	ackLatency := card.SmallMessageLatency()

	for i := 0; i < npkts; i++ {
		remaining := bytes - i*mtu
		// A failure resends this packet plus the window streamed behind
		// it (go-back-N), bounded by what is left of the message.
		resend := window * mtu
		if resend > remaining {
			resend = remaining
		}
		for attempt := 0; ; attempt++ {
			if attempt > maxRetry {
				// Retry budget exhausted: the card escalates to a
				// link-level reset and resends once more outside the
				// random schedule, so delivery is still guaranteed.
				out.Escalations++
				out.Extra += card.ContigTime(resend, hops)
				out.RetransBytes += int64(resend)
				break
			}
			fate := inj.PacketFate(src, dst, seqBase+i, attempt)
			if fate == fault.Delivered {
				break
			}
			out.Retransmissions++
			out.RetransBytes += int64(resend)
			detect := ackLatency // NACK of a corrupt packet
			if fate == fault.Dropped {
				detect = 2 * ackLatency // ACK timeout
			}
			shift := attempt
			if shift > backoffShiftCap {
				shift = backoffShiftCap
			}
			out.Extra += detect + backoff<<shift + card.ContigTime(resend, hops)
		}
	}
	return out, npkts
}
