package nic

// Pack-and-coalesce cost model for strided one-sided transfers.
//
// The paper's strided MPI_PUT/MPI_GET move element-by-element over
// programmed I/O — "much slower" than the contiguous DMA path. The
// APENet project shows the standard remedy on NIC hardware without
// strided DMA: copy the non-contiguous region into a staging buffer
// and ship a single contiguous DMA burst, unpacking on the far side.
// Whether that wins depends on the card: packing trades the
// per-element PIO charge for two per-byte memory copies plus a second
// driver transaction (the staging-buffer DMA launch), so below a
// crossover element count the PIO path is still cheaper.
//
// PackModel prices both paths against any registered interconnect so
// the compiler's coalesce stage, the MPI runtime's charge site and the
// static cost estimator agree on the crossover by construction. The
// memcpy rate comes from the cluster's CPU parameterization (passed
// in, not imported: cluster sits above nic in the dependency order).

import (
	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
)

// packCrossoverCap bounds the crossover search: a card whose packed
// path has not beaten PIO by this many elements never benefits from
// coalescing (an idealized fabric with free PIO, for example).
const packCrossoverCap = 1 << 20

// Machine is the narrow view of the cluster parameterization the NIC
// cost models need: the fabric card and the CPU's memory-copy rate.
// cluster.Params implements it (passed in, not imported: cluster sits
// above nic in the dependency order).
type Machine interface {
	// FabricCard returns the machine's interconnect cost model.
	FabricCard() interconnect.Interconnect
	// MemCopyCost returns the charged time per byte of a local memory
	// copy.
	MemCopyCost() sim.Time
}

// PackModelFor builds the machine's pack-vs-PIO cost model — the
// single construction point shared by the MPI runtime's charge site,
// the compiler's coalesce stage, the static estimator and the
// benchmark sweeps, so every layer prices the same crossover by
// construction.
func PackModelFor(m Machine) PackModel {
	return PackModel{Card: m.FabricCard(), MemCopyPerByte: m.MemCopyCost()}
}

// ProtocolModelFor returns the machine's eager/rendezvous protocol
// model when its card prices one (the rdma card), following the same
// single-construction-point discipline as PackModelFor.
func ProtocolModelFor(m Machine) (interconnect.ProtocolModel, bool) {
	pm, ok := m.FabricCard().(interconnect.ProtocolModel)
	return pm, ok
}

// PackModel prices the strided-PIO path against the
// pack→contiguous-DMA→unpack path on one interconnect.
type PackModel struct {
	// Card is the fabric's cost model.
	Card interconnect.Interconnect
	// MemCopyPerByte is the CPU's per-byte memory-copy charge
	// (cluster.CPUParams.MemCopyPerByte), paid once to pack at the
	// origin and once to unpack at the target.
	MemCopyPerByte sim.Time
}

// PIOTime is the full origin-side cost of a strided transfer of elems
// elements over the per-element programmed-I/O path: one send setup
// plus the card's strided time.
func (m PackModel) PIOTime(elems, elemSize, hops int) sim.Time {
	if elems <= 0 {
		return 0
	}
	return m.Card.SendSetup() + m.Card.StridedTime(elems, elemSize, hops)
}

// PackedTime is the full origin-side cost of the coalesced path: the
// strided request's send setup, the pack and unpack memory copies
// (both charged to the origin, matching the runtime's origin-charging
// model), one extra DMA setup for the staging-buffer burst, and the
// contiguous wire time of the packed payload.
func (m PackModel) PackedTime(elems, elemSize, hops int) sim.Time {
	if elems <= 0 {
		return 0
	}
	bytes := elems * elemSize
	return 2*m.Card.SendSetup() +
		2*sim.Time(bytes)*m.MemCopyPerByte +
		m.Card.ContigTime(bytes, hops)
}

// PackWins reports whether the coalesced path is strictly cheaper than
// per-element PIO for this transfer shape.
func (m PackModel) PackWins(elems, elemSize, hops int) bool {
	if elems <= 1 {
		return false // a single element is already contiguous
	}
	return m.PackedTime(elems, elemSize, hops) < m.PIOTime(elems, elemSize, hops)
}

// CrossoverElems is the smallest element count at which packing wins
// (0 when it never does within the search cap). Both cost functions
// are monotone in elems with constant per-element slopes, so once
// packing wins it keeps winning; a doubling probe followed by binary
// search finds the exact crossover.
func (m PackModel) CrossoverElems(elemSize, hops int) int64 {
	hi := 2
	for !m.PackWins(hi, elemSize, hops) {
		if hi >= packCrossoverCap {
			return 0
		}
		hi *= 2
	}
	lo := hi / 2 // PackWins(lo) is false (or lo < 2)
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if m.PackWins(mid, elemSize, hops) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return int64(hi)
}
