package nic

import (
	"testing"

	"vbuscluster/internal/sim"
)

func TestNewRDMAValidation(t *testing.T) {
	if _, err := NewRDMA(DefaultRDMAConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*RDMAConfig)
	}{
		{"negative wire rate", func(c *RDMAConfig) { c.WirePerByte = -1 }},
		{"negative switch latency", func(c *RDMAConfig) { c.SwitchLatency = -1 }},
		{"negative post", func(c *RDMAConfig) { c.PostOverhead = -1 }},
		{"negative copy rate", func(c *RDMAConfig) { c.CopyPerByte = -1 }},
		{"negative reg base", func(c *RDMAConfig) { c.RegBase = -1 }},
		{"negative reg rate", func(c *RDMAConfig) { c.RegPerByte = -1 }},
		{"negative sg rate", func(c *RDMAConfig) { c.SGPerElement = -1 }},
		{"negative ctrl bytes", func(c *RDMAConfig) { c.CtrlBytes = -1 }},
		{"zero cache entries", func(c *RDMAConfig) { c.RegCacheEntries = 0 }},
		{"reg slope at eager slope", func(c *RDMAConfig) { c.RegPerByte = 2 * c.CopyPerByte }},
		{"reg slope above eager slope", func(c *RDMAConfig) { c.RegPerByte = 2*c.CopyPerByte + 1 }},
	} {
		cfg := DefaultRDMAConfig()
		tc.mutate(&cfg)
		if _, err := NewRDMA(cfg); err == nil {
			t.Errorf("%s: NewRDMA accepted the config", tc.name)
		}
	}
}

func TestRDMACaps(t *testing.T) {
	r, err := NewRDMA(DefaultRDMAConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Caps().String(); got != "dma+hops+rndv" {
		t.Errorf("caps = %q, want dma+hops+rndv", got)
	}
}

// A registered (cached) rendezvous must be strictly cheaper than a cold
// one — by exactly the registration cost — and still dearer than the
// raw wire: the handshake never disappears.
func TestRDMAWarmBelowCold(t *testing.T) {
	r, err := NewRDMA(DefaultRDMAConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRDMAConfig()
	for _, bytes := range []int{8, 1024, 1 << 20} {
		for _, hops := range []int{0, 1, 4} {
			cold := r.RendezvousTime(bytes, hops, false)
			warm := r.RendezvousTime(bytes, hops, true)
			if warm >= cold {
				t.Fatalf("warm rendezvous %v not below cold %v (%d bytes, %d hops)", warm, cold, bytes, hops)
			}
			wantGap := cfg.RegBase + sim.Time(bytes)*cfg.RegPerByte
			if cold-warm != wantGap {
				t.Errorf("cold-warm gap %v != registration cost %v (%d bytes)", cold-warm, wantGap, bytes)
			}
			if warm <= r.ContigTime(bytes, hops) {
				t.Errorf("warm rendezvous %v not above the raw wire %v (%d bytes, %d hops)",
					warm, r.ContigTime(bytes, hops), bytes, hops)
			}
		}
	}
}

// The default calibration's cold crossover sits in the few-KB band of
// the MPICH2-over-InfiniBand designs, and warming the cache pulls it
// below 1 KB.
func TestRDMADefaultCrossoverShape(t *testing.T) {
	r, err := NewRDMA(DefaultRDMAConfig())
	if err != nil {
		t.Fatal(err)
	}
	cold := r.ProtocolCrossoverBytes(1, 0)
	warm := r.ProtocolCrossoverBytes(1, 1)
	if cold < 1<<10 || cold > 1<<14 {
		t.Errorf("cold crossover %d bytes outside the plausible [1KB,16KB] band", cold)
	}
	if warm <= 0 || warm >= cold {
		t.Errorf("warm crossover %d bytes, want positive and below cold %d", warm, cold)
	}
	if warm > 1<<10 {
		t.Errorf("warm crossover %d bytes, want at most 1KB", warm)
	}
}

// ProtocolModelFor resolves the model through the Machine interface the
// compiler uses, and only for cards that actually price protocols.
func TestProtocolModelFor(t *testing.T) {
	r, err := NewRDMA(DefaultRDMAConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := machineStub{card: r}
	pm, ok := ProtocolModelFor(m)
	if !ok || pm == nil {
		t.Fatal("ProtocolModelFor did not resolve the rdma card")
	}
	v, _ := defaultCards(t)
	if _, ok := ProtocolModelFor(machineStub{card: v}); ok {
		t.Error("ProtocolModelFor resolved a protocol model for the vbus card")
	}
}

// machineStub adapts a bare card to the Machine interface.
type machineStub struct{ card Card }

func (m machineStub) FabricCard() Card      { return m.card }
func (m machineStub) MemCopyCost() sim.Time { return testMemCopyPerByte }
