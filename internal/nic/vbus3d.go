// vbus3d models a 3D-torus generation of the V-Bus card, in the
// spirit of APEnet-style cluster interconnects: the same FPGA link
// physics and wormhole routing as the 2D card, but six links per node
// arranged as a 3D torus and a leaner RDMA engine. Two qualitative
// differences against the 2D card drive its cost profile:
//
//   - hop distances shrink: a 1024-node machine is a 16×8×8 torus of
//     diameter 16 where the 2D 32×32 mesh has diameter 62, so the
//     per-hop wormhole head latency matters far less at scale;
//   - there is no shared virtual bus to arbitrate, so broadcasts decay
//     to a software tree of point-to-point messages (like Ethernet's,
//     but over the fast links).
//
// The card implements interconnect.GeometryHinter so the machine layer
// builds the 3D geometry its hop model assumes.
package nic

import (
	"fmt"
	"math/bits"

	"vbuscluster/internal/fabric"
	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
)

func init() {
	interconnect.Register("vbus3d", func() (interconnect.Interconnect, error) {
		return NewVBus3D(DefaultVBus3DConfig())
	})
}

// VBus3DConfig parameterizes the 3D-torus V-Bus card model.
type VBus3DConfig struct {
	// Link physics, shared with the 2D card (the FPGA links are the
	// same; only the topology and the DMA engine changed).
	LinkMode fabric.PipelineMode
	Lines    fabric.LineSet
	Margin   sim.Time
	Sampler  fabric.SkewSampler

	RouterLatency sim.Time // per-hop wormhole routing latency

	// DMASetup is the per-message driver cost of the contiguous path.
	// Smaller than the 2D card's: the RDMA engine posts descriptors
	// directly, with no daemon message-queue handshake.
	DMASetup sim.Time
	// PIOPerElement is the programmed-I/O cost per element on the
	// strided path (unchanged: the element path is CPU-bound).
	PIOPerElement sim.Time
}

// DefaultVBus3DConfig reuses the 2D card's link calibration (32-bit
// SKWP links, 300ns ± 60ns propagation, 64ns sampling grid, 8ns
// margin, 60ns router) with a 10µs RDMA setup.
func DefaultVBus3DConfig() VBus3DConfig {
	base := DefaultVBusConfig()
	return VBus3DConfig{
		LinkMode:      base.LinkMode,
		Lines:         base.Lines,
		Margin:        base.Margin,
		Sampler:       base.Sampler,
		RouterLatency: base.RouterLatency,
		DMASetup:      10 * sim.Microsecond,
		PIOPerElement: base.PIOPerElement,
	}
}

// VBus3D is the 3D-torus V-Bus card cost model.
type VBus3D struct {
	cfg  VBus3DConfig
	link *fabric.Link
}

// NewVBus3D validates cfg and builds the card model.
func NewVBus3D(cfg VBus3DConfig) (*VBus3D, error) {
	if cfg.DMASetup < 0 || cfg.PIOPerElement < 0 || cfg.RouterLatency < 0 {
		return nil, fmt.Errorf("nic: negative cost in VBus3DConfig")
	}
	l, err := fabric.NewLink(fabric.LinkConfig{
		Mode:    cfg.LinkMode,
		Lines:   cfg.Lines,
		Margin:  cfg.Margin,
		Sampler: cfg.Sampler,
	})
	if err != nil {
		return nil, fmt.Errorf("nic: %w", err)
	}
	return &VBus3D{cfg: cfg, link: l}, nil
}

// Name implements Card.
func (v *VBus3D) Name() string { return "vbus3d" }

// SendSetup implements Card.
func (v *VBus3D) SendSetup() sim.Time { return v.cfg.DMASetup }

// PerElementOverhead implements Card.
func (v *VBus3D) PerElementOverhead() sim.Time { return v.cfg.PIOPerElement }

// wireTime is the wormhole pipeline time for a payload over hops torus
// channels (+2 for inject/eject), identical in form to the 2D card.
func (v *VBus3D) wireTime(bytes, hops int) sim.Time {
	bpf := v.link.Width() / 8
	flits := (bytes + bpf - 1) / bpf
	if flits == 0 {
		flits = 1
	}
	head := sim.Time(hops+2) * (v.cfg.RouterLatency + v.link.PropagationDelay())
	return head + sim.Time(flits-1)*v.link.LaunchInterval()
}

// ContigTime implements Card: pure RDMA + wire, no per-element work.
func (v *VBus3D) ContigTime(bytes, hops int) sim.Time {
	return v.wireTime(bytes, hops)
}

// StridedTime implements Card: every element costs a PIO store on top
// of the wire time of the gathered payload.
func (v *VBus3D) StridedTime(elems, elemSize, hops int) sim.Time {
	if elems <= 0 {
		return 0
	}
	return sim.Time(elems)*v.cfg.PIOPerElement + v.wireTime(elems*elemSize, hops)
}

// BroadcastTime implements Card: no virtual bus on the torus, so a
// binomial software tree of ceil(log2(nodes)) point-to-point stages.
// The tree pairs torus neighbors, so each stage moves one hop.
func (v *VBus3D) BroadcastTime(bytes, nodes int) sim.Time {
	if nodes <= 1 {
		return 0
	}
	stages := bits.Len(uint(nodes - 1))
	return sim.Time(stages) * (v.SendSetup() + v.wireTime(bytes, 1))
}

// SmallMessageLatency implements Card.
func (v *VBus3D) SmallMessageLatency() sim.Time {
	return v.SendSetup() + v.wireTime(8, 1)
}

// Caps implements Card: the same DMA-vs-PIO data paths as the 2D
// card and hop-sensitive wormhole routing, but no hardware broadcast.
func (v *VBus3D) Caps() interconnect.Caps {
	return interconnect.Caps{DMAContig: true, PIOStrided: true, HardwareBroadcast: false, HopSensitive: true}
}

// PreferredGeometry implements interconnect.GeometryHinter: the most
// cube-like 3D torus covering n nodes. Powers of two split the
// exponent across the three dimensions (1024 → 16×8×8, 64 → 4×4×4);
// other counts take the smallest a ≥ b ≥ c with a·b·c ≥ n starting
// from the cube root. Wraparound links are always on — they are what
// the six-link node design buys.
func (v *VBus3D) PreferredGeometry(n int) ([]int, bool) {
	if n <= 1 {
		return []int{1, 1, 1}, true
	}
	if n&(n-1) == 0 {
		e := bits.Len(uint(n)) - 1
		base, rem := e/3, e%3
		dims := []int{base, base, base}
		for i := 0; i < rem; i++ {
			dims[i]++
		}
		return []int{1 << dims[0], 1 << dims[1], 1 << dims[2]}, true
	}
	a := 1
	for a*a*a < n {
		a++
	}
	b := 1
	for a*b*b < n {
		b++
	}
	c := 1
	for a*b*c < n {
		c++
	}
	return []int{a, b, c}, true
}

// Compile-time interface checks.
var (
	_ Card                        = (*VBus3D)(nil)
	_ interconnect.GeometryHinter = (*VBus3D)(nil)
)
