// rdma models an RDMA-class successor to the V-Bus card, in the
// spirit of MPICH2 over InfiniBand: a switched fabric whose dominant
// design question is not DMA-vs-PIO but eager-vs-rendezvous. Every
// contiguous transfer can ride one of two priced paths:
//
//   - eager: the sender copies the payload into a pre-registered
//     bounce buffer and ships one message. No handshake, no
//     registration — but two per-byte host copies (copy-in at the
//     sender, delivery copy at the receiver, both charged to the
//     origin like the pack path charges both of its copies);
//   - rendezvous: an RTS/CTS handshake negotiates the transfer, the
//     source buffer is registered (pinned) with the NIC on demand,
//     and the payload moves zero-copy. Registration is expensive but
//     cached: repeated transfers from the same region skip it.
//
// The card implements interconnect.ProtocolModel; the crossover
// between the paths is found by the same doubling + binary-search
// machinery nic.PackModel.CrossoverElems uses, and is exact because
// both cost curves share the wire term while the eager copy slope is
// validated to exceed the rendezvous registration slope.
package nic

import (
	"fmt"
	"math/bits"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
)

func init() {
	interconnect.Register("rdma", func() (interconnect.Interconnect, error) {
		return NewRDMA(DefaultRDMAConfig())
	})
}

// protoCrossoverCap bounds the eager/rendezvous crossover search: a
// configuration where rendezvous has not won by a 1 GiB payload never
// switches protocols.
const protoCrossoverCap = 1 << 30

// RDMAConfig parameterizes the rdma card model.
type RDMAConfig struct {
	// WirePerByte is the per-byte serialization time on the switched
	// links (the inverse link bandwidth).
	WirePerByte sim.Time
	// SwitchLatency is the per-hop switch forward latency; inject and
	// eject each cost one more (hops+2, the wormhole head convention
	// the other cards use).
	SwitchLatency sim.Time
	// PostOverhead is the per-message descriptor post on the sender —
	// the card's SendSetup.
	PostOverhead sim.Time
	// CopyPerByte is the host memory-copy rate the eager path pays,
	// once to stage into the bounce buffer and once to deliver at the
	// receiver (both charged to the origin).
	CopyPerByte sim.Time
	// CtrlBytes is the size of one RTS/CTS control message.
	CtrlBytes int
	// RegBase is the fixed cost of one memory-registration syscall.
	RegBase sim.Time
	// RegPerByte is the per-byte page-pinning cost of registration.
	// Must be strictly below 2*CopyPerByte, or the eager and
	// rendezvous cost curves never cross and the crossover search
	// would not be monotone.
	RegPerByte sim.Time
	// SGPerElement is the per-element descriptor cost of the
	// scatter/gather DMA used for strided transfers (cheaper than CPU
	// programmed I/O, still linear in the element count).
	SGPerElement sim.Time
	// RegCacheEntries is the per-node registration-cache capacity.
	RegCacheEntries int
}

// DefaultRDMAConfig calibrates the card against the cluster's 2001-era
// parts: 400 MB/s switched links (2.5 ns/byte), 500 ns per switch hop,
// a 3 µs descriptor post, the host's 5 ns/byte copy rate
// (cluster.DefaultCPUParams().MemCopyPerByte), 64-byte RTS/CTS
// messages, a 25 µs + 0.25 ns/byte registration syscall and a 128-entry
// registration cache. Cold-cache crossover lands near 3.5 KB, warm
// near 0.9 KB — the shape of the MPICH2-over-InfiniBand numbers.
func DefaultRDMAConfig() RDMAConfig {
	return RDMAConfig{
		WirePerByte:     2500 * sim.Picosecond,
		SwitchLatency:   500 * sim.Nanosecond,
		PostOverhead:    3 * sim.Microsecond,
		CopyPerByte:     5 * sim.Nanosecond,
		CtrlBytes:       64,
		RegBase:         25 * sim.Microsecond,
		RegPerByte:      250 * sim.Picosecond,
		SGPerElement:    150 * sim.Nanosecond,
		RegCacheEntries: 128,
	}
}

// RDMA is the protocol-switched RDMA card cost model.
type RDMA struct {
	cfg RDMAConfig
}

// NewRDMA validates cfg and builds the card model.
func NewRDMA(cfg RDMAConfig) (*RDMA, error) {
	if cfg.WirePerByte < 0 || cfg.SwitchLatency < 0 || cfg.PostOverhead < 0 ||
		cfg.CopyPerByte < 0 || cfg.RegBase < 0 || cfg.RegPerByte < 0 || cfg.SGPerElement < 0 {
		return nil, fmt.Errorf("nic: negative cost in RDMAConfig")
	}
	if cfg.CtrlBytes < 0 {
		return nil, fmt.Errorf("nic: negative RDMAConfig.CtrlBytes")
	}
	if cfg.RegCacheEntries < 1 {
		return nil, fmt.Errorf("nic: RDMAConfig.RegCacheEntries %d must be >= 1", cfg.RegCacheEntries)
	}
	if cfg.RegPerByte >= 2*cfg.CopyPerByte {
		return nil, fmt.Errorf("nic: RDMAConfig.RegPerByte %v must be below twice CopyPerByte %v (the eager and rendezvous cost curves would never cross)",
			cfg.RegPerByte, cfg.CopyPerByte)
	}
	return &RDMA{cfg: cfg}, nil
}

// Name implements Card.
func (r *RDMA) Name() string { return "rdma" }

// SendSetup implements Card.
func (r *RDMA) SendSetup() sim.Time { return r.cfg.PostOverhead }

// PerElementOverhead implements Card.
func (r *RDMA) PerElementOverhead() sim.Time { return r.cfg.SGPerElement }

// wireTime is the zero-copy DMA time of a payload over hops switch
// channels (+2 for inject/eject).
func (r *RDMA) wireTime(bytes, hops int) sim.Time {
	return sim.Time(hops+2)*r.cfg.SwitchLatency + sim.Time(bytes)*r.cfg.WirePerByte
}

// ContigTime implements Card: the raw zero-copy engine, used by the
// runtime's internal pre-registered buffers (broadcast trees, packed
// bursts, retransmissions). User payloads go through the protocol
// model instead.
func (r *RDMA) ContigTime(bytes, hops int) sim.Time {
	return r.wireTime(bytes, hops)
}

// StridedTime implements Card: a scatter/gather DMA pays one
// descriptor per element plus the wire time of the gathered payload.
func (r *RDMA) StridedTime(elems, elemSize, hops int) sim.Time {
	if elems <= 0 {
		return 0
	}
	return sim.Time(elems)*r.cfg.SGPerElement + r.wireTime(elems*elemSize, hops)
}

// BroadcastTime implements Card: no hardware bus on a switched fabric,
// so a binomial software tree of ceil(log2(nodes)) neighbor stages.
func (r *RDMA) BroadcastTime(bytes, nodes int) sim.Time {
	if nodes <= 1 {
		return 0
	}
	stages := bits.Len(uint(nodes - 1))
	return sim.Time(stages) * (r.SendSetup() + r.wireTime(bytes, 1))
}

// SmallMessageLatency implements Card.
func (r *RDMA) SmallMessageLatency() sim.Time {
	return r.SendSetup() + r.wireTime(8, 1)
}

// Caps implements Card: zero-copy DMA for contiguous data, hop
// sensitivity through the switches, and the protocol-switched
// contiguous path. No CPU programmed-I/O penalty (strided data rides
// the scatter/gather engine) and no hardware broadcast.
func (r *RDMA) Caps() interconnect.Caps {
	return interconnect.Caps{DMAContig: true, HopSensitive: true, EagerRendezvous: true}
}

// handshake is the RTS/CTS round trip of the rendezvous path: two
// posted control messages crossing the same hop distance.
func (r *RDMA) handshake(hops int) sim.Time {
	return 2 * (r.cfg.PostOverhead + r.wireTime(r.cfg.CtrlBytes, hops))
}

// regCost is the on-demand memory-registration (page pinning) cost of
// a bytes-sized region.
func (r *RDMA) regCost(bytes int) sim.Time {
	return r.cfg.RegBase + sim.Time(bytes)*r.cfg.RegPerByte
}

// EagerTime implements interconnect.ProtocolModel: one post, the two
// bounce-buffer copies (both charged to the origin, the pack-path
// convention), and the wire.
func (r *RDMA) EagerTime(bytes, hops int) sim.Time {
	return r.cfg.PostOverhead + 2*sim.Time(bytes)*r.cfg.CopyPerByte + r.wireTime(bytes, hops)
}

// RendezvousTime implements interconnect.ProtocolModel: one post, the
// RTS/CTS handshake, registration unless the region is already
// registered, and the zero-copy wire.
func (r *RDMA) RendezvousTime(bytes, hops int, registered bool) sim.Time {
	t := r.cfg.PostOverhead + r.handshake(hops) + r.wireTime(bytes, hops)
	if !registered {
		t += r.regCost(bytes)
	}
	return t
}

// rndvWins reports whether the rendezvous path is strictly cheaper
// than eager for a bytes-sized payload, with registration cost blended
// by the expected cache hit rate. hitRate 0 and 1 compare the exact
// integer costs the runtime charges; fractional rates blend in float.
func (r *RDMA) rndvWins(bytes, hops int, hitRate float64) bool {
	eager := r.EagerTime(bytes, hops)
	switch {
	case hitRate <= 0:
		return r.RendezvousTime(bytes, hops, false) < eager
	case hitRate >= 1:
		return r.RendezvousTime(bytes, hops, true) < eager
	}
	cold := float64(r.RendezvousTime(bytes, hops, false))
	warm := float64(r.RendezvousTime(bytes, hops, true))
	return (1-hitRate)*cold+hitRate*warm < float64(eager)
}

// ProtocolCrossoverBytes implements interconnect.ProtocolModel. Both
// cost curves share the wire term and the eager copy slope strictly
// exceeds the registration slope (validated in NewRDMA), so once
// rendezvous wins it keeps winning; a doubling probe followed by
// binary search finds the exact crossover.
func (r *RDMA) ProtocolCrossoverBytes(hops int, hitRate float64) int64 {
	hi := 1
	for !r.rndvWins(hi, hops, hitRate) {
		if hi >= protoCrossoverCap {
			return 0
		}
		hi *= 2
	}
	lo := hi / 2 // rndvWins(lo) is false (or lo == 0)
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if r.rndvWins(mid, hops, hitRate) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return int64(hi)
}

// RegCacheCapacity implements interconnect.ProtocolModel.
func (r *RDMA) RegCacheCapacity() int { return r.cfg.RegCacheEntries }

// Compile-time interface checks.
var (
	_ Card                       = (*RDMA)(nil)
	_ interconnect.ProtocolModel = (*RDMA)(nil)
)
