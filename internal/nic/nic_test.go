package nic

import (
	"testing"

	"vbuscluster/internal/sim"
)

func defaultCards(t *testing.T) (*VBus, *Ethernet) {
	t.Helper()
	v, err := NewVBus(DefaultVBusConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEthernet(DefaultEthernetConfig())
	if err != nil {
		t.Fatal(err)
	}
	return v, e
}

func TestValidation(t *testing.T) {
	bad := DefaultVBusConfig()
	bad.DMASetup = -1
	if _, err := NewVBus(bad); err == nil {
		t.Fatal("negative DMA setup accepted")
	}
	badE := DefaultEthernetConfig()
	badE.BytesPerSecond = 0
	if _, err := NewEthernet(badE); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	badE = DefaultEthernetConfig()
	badE.Latency = -1
	if _, err := NewEthernet(badE); err == nil {
		t.Fatal("negative latency accepted")
	}
}

// §2.1: "a V-Bus network card provides about four times lower latency
// than the Fast Ethernet card."
func TestVBusLatencyRoughly4xBetterThanEthernet(t *testing.T) {
	v, e := defaultCards(t)
	ratio := float64(e.SmallMessageLatency()) / float64(v.SmallMessageLatency())
	if ratio < 3.0 || ratio > 10.0 {
		t.Fatalf("latency ratio ethernet/vbus = %.2f, want ~4-8x", ratio)
	}
}

// §1: "a V-Bus network card offers four times higher bandwidth ... than
// a fast Ethernet card" — measured as large-transfer goodput including
// setup.
func TestVBusBandwidthRoughly4xEthernet(t *testing.T) {
	v, e := defaultCards(t)
	const bytes = 1 << 20
	tv := v.SendSetup() + v.ContigTime(bytes, 2)
	te := e.SendSetup() + e.ContigTime(bytes, 2)
	bwV := float64(bytes) / tv.Seconds()
	bwE := float64(bytes) / te.Seconds()
	ratio := bwV / bwE
	if ratio < 3.0 || ratio > 40.0 {
		t.Fatalf("bandwidth ratio vbus/ethernet = %.2f, want >= ~4", ratio)
	}
	if bwE > 12.5e6 {
		t.Fatalf("ethernet goodput %.0f exceeds wire rate", bwE)
	}
}

func TestContigTimeMonotonicInSize(t *testing.T) {
	v, e := defaultCards(t)
	for _, c := range []Card{v, e} {
		prev := sim.Time(-1)
		for _, b := range []int{1, 64, 4096, 1 << 20} {
			tt := c.ContigTime(b, 1)
			if tt <= prev {
				t.Fatalf("%s: ContigTime not increasing at %dB", c.Name(), b)
			}
			prev = tt
		}
	}
}

func TestVBusContigGrowsWithHops(t *testing.T) {
	v, _ := defaultCards(t)
	if v.ContigTime(1024, 4) <= v.ContigTime(1024, 1) {
		t.Fatal("hop count should increase head latency")
	}
}

func TestEthernetHopsIrrelevant(t *testing.T) {
	_, e := defaultCards(t)
	if e.ContigTime(1024, 1) != e.ContigTime(1024, 5) {
		t.Fatal("ethernet is a shared medium; hops must not matter")
	}
}

// The asymmetry the compiler exploits: strided transfers pay a
// per-element PIO cost, so for the same byte count they are much more
// expensive than contiguous DMA.
func TestStridedMuchSlowerThanContig(t *testing.T) {
	v, _ := defaultCards(t)
	elems, sz := 4096, 8
	contig := v.ContigTime(elems*sz, 2)
	strided := v.StridedTime(elems, sz, 2)
	if strided < 2*contig {
		t.Fatalf("strided (%v) should dwarf contiguous (%v)", strided, contig)
	}
	// And the gap must be the per-element charge.
	want := contig + sim.Time(elems)*v.PerElementOverhead()
	if strided != want {
		t.Fatalf("strided = %v, want %v", strided, want)
	}
}

func TestStridedZeroElems(t *testing.T) {
	v, e := defaultCards(t)
	if v.StridedTime(0, 8, 1) != 0 || e.StridedTime(0, 8, 1) != 0 {
		t.Fatal("zero-element strided transfer should be free")
	}
}

// The middle-granularity tradeoff in one inequality: shipping 2x the
// bytes contiguously beats shipping the exact elements strided, for
// large enough regions.
func TestApproxContigBeatsExactStrided(t *testing.T) {
	v, _ := defaultCards(t)
	elems, sz := 8192, 8
	exact := v.StridedTime(elems, sz, 2)
	approx := v.ContigTime(2*elems*sz, 2) // stride-2 region widened to dense
	if approx >= exact {
		t.Fatalf("approximate contiguous (%v) should beat exact strided (%v)", approx, exact)
	}
}

func TestVBusHardwareBroadcastBeatsEthernetTree(t *testing.T) {
	v, e := defaultCards(t)
	for _, nodes := range []int{2, 4, 16} {
		bv := v.BroadcastTime(1<<16, nodes)
		be := e.BroadcastTime(1<<16, nodes)
		if bv >= be {
			t.Fatalf("nodes=%d: vbus broadcast (%v) should beat ethernet tree (%v)", nodes, bv, be)
		}
	}
}

func TestBroadcastTrivialCases(t *testing.T) {
	v, e := defaultCards(t)
	if v.BroadcastTime(1024, 1) != 0 || e.BroadcastTime(1024, 1) != 0 {
		t.Fatal("broadcast to self should be free")
	}
}

func TestVBusBroadcastScalesSublinearly(t *testing.T) {
	v, _ := defaultCards(t)
	b4 := v.BroadcastTime(1<<16, 4)
	b16 := v.BroadcastTime(1<<16, 16)
	if float64(b16) > 2.0*float64(b4) {
		t.Fatalf("virtual-bus broadcast should be nearly node-count independent: %v (4) vs %v (16)", b4, b16)
	}
}

func TestEthernetBroadcastLogStages(t *testing.T) {
	_, e := defaultCards(t)
	one := e.SendSetup() + e.ContigTime(100, 0)
	if e.BroadcastTime(100, 2) != one {
		t.Fatal("2-node tree should be one stage")
	}
	if e.BroadcastTime(100, 4) != 2*one {
		t.Fatal("4-node tree should be two stages")
	}
	if e.BroadcastTime(100, 5) != 3*one {
		t.Fatal("5-node tree should be three stages")
	}
}

func TestMeshConfigRoundTrip(t *testing.T) {
	v, _ := defaultCards(t)
	mc := v.MeshConfig(2, 2)
	if mc.Width != 2 || mc.Height != 2 {
		t.Fatal("geometry not propagated")
	}
	if mc.RouterLatency != DefaultVBusConfig().RouterLatency {
		t.Fatal("router latency not propagated")
	}
}

func TestCardNames(t *testing.T) {
	v, e := defaultCards(t)
	if v.Name() != "vbus" || e.Name() != "fast-ethernet" {
		t.Fatal("card names wrong")
	}
}
