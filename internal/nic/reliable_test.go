package nic

import (
	"testing"

	"vbuscluster/internal/fault"
)

func testCard(t *testing.T) *VBus {
	t.Helper()
	card, err := NewVBus(DefaultVBusConfig())
	if err != nil {
		t.Fatal(err)
	}
	return card
}

func inj(t *testing.T, spec string) *fault.Injector {
	t.Helper()
	i, err := fault.FromString(spec)
	if err != nil {
		t.Fatalf("FromString(%q): %v", spec, err)
	}
	return i
}

func TestReliableCostCleanFabricIsFree(t *testing.T) {
	card := testCard(t)
	for _, in := range []*fault.Injector{nil, inj(t, "seed=0,flitdrop=1,corrupt=1")} {
		out, npkts := ReliableCost(card, in, 0, 1, 1, 100_000, 0)
		if out != (Outcome{}) {
			t.Errorf("clean fabric outcome = %+v, want zero", out)
		}
		if want := (100_000 + fault.DefaultMTU - 1) / fault.DefaultMTU; npkts != want {
			t.Errorf("npkts = %d, want %d", npkts, want)
		}
	}
	if out, npkts := ReliableCost(card, nil, 0, 1, 1, 0, 0); out != (Outcome{}) || npkts != 0 {
		t.Errorf("empty transfer = %+v/%d, want zero", out, npkts)
	}
}

func TestReliableCostDeterministic(t *testing.T) {
	card := testCard(t)
	a := inj(t, "seed=99,flitdrop=0.05,corrupt=0.05")
	b := inj(t, "seed=99,flitdrop=0.05,corrupt=0.05")
	for seq := 0; seq < 10; seq++ {
		oa, na := ReliableCost(card, a, 2, 3, 2, 1<<17, seq*1000)
		ob, nb := ReliableCost(card, b, 2, 3, 2, 1<<17, seq*1000)
		if oa != ob || na != nb {
			t.Fatalf("same seed disagrees: %+v/%d vs %+v/%d", oa, na, ob, nb)
		}
	}
}

func TestReliableCostMonotoneInDropRate(t *testing.T) {
	card := testCard(t)
	var prev Outcome
	for _, rate := range []string{"1e-4", "1e-3", "1e-2", "1e-1", "0.3"} {
		in := inj(t, "seed=7,flitdrop="+rate)
		out, _ := ReliableCost(card, in, 0, 1, 1, 1<<20, 0)
		if out.Extra < prev.Extra || out.Retransmissions < prev.Retransmissions {
			t.Fatalf("outcome not monotone at rate %s: %+v after %+v", rate, out, prev)
		}
		prev = out
	}
	if prev.Extra == 0 || prev.Retransmissions == 0 {
		t.Error("no retries at 30% drop over 256 packets")
	}
}

func TestReliableCostAlwaysDelivers(t *testing.T) {
	// Even at 100% drop the escalation path bounds every packet's
	// attempts and guarantees delivery.
	card := testCard(t)
	in := inj(t, "seed=3,flitdrop=1,maxretry=2")
	out, npkts := ReliableCost(card, in, 0, 1, 1, 3*fault.DefaultMTU, 0)
	if npkts != 3 {
		t.Fatalf("npkts = %d, want 3", npkts)
	}
	if out.Escalations != 3 {
		t.Errorf("escalations = %d, want 3 (one per packet)", out.Escalations)
	}
	if want := 3 * 3; out.Retransmissions != want {
		t.Errorf("retransmissions = %d, want %d (maxretry+1 failures per packet)", out.Retransmissions, want)
	}
	if out.Extra <= 0 {
		t.Error("no extra time charged at 100% drop")
	}
}
