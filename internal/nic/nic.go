// Package nic models the network interface cards of the cluster: the
// V-Bus card described in §2 of the paper and a Fast Ethernet card used
// as the paper's reference point ("a V-Bus network card offers four
// times higher bandwidth and much lower latency than a fast Ethernet
// card").
//
// The cards expose *cost functions* — how long an operation occupies
// the sender and how long until the payload lands remotely — rather
// than performing transfers themselves: the MPI runtime moves the real
// bytes through Go memory and charges per-process virtual clocks with
// these costs.
//
// The V-Bus card distinguishes the two §2.2 data paths:
//
//   - contiguous transfers use DMA: "data from the user buffer can be
//     copied into the device driver buffer without interrupting the
//     processor" — a fixed setup plus wire time;
//   - strided transfers use programmed I/O: "data in the user buffer is
//     copied into the device driver buffer one-element by one-element"
//     — an extra per-element CPU charge, which is why the compiler's
//     middle/coarse granularities exist.
package nic

import (
	"fmt"
	"math/bits"

	"vbuscluster/internal/fabric"
	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/mesh"
	"vbuscluster/internal/sim"
)

// Card is the cost model of one NIC type. It is an alias of the
// machine-layer Interconnect seam (internal/interconnect), kept so the
// card models read naturally as NICs; both cards here register as
// interconnect backends ("vbus", "ethernet") in init.
type Card = interconnect.Interconnect

func init() {
	interconnect.Register("vbus", func() (interconnect.Interconnect, error) {
		return NewVBus(DefaultVBusConfig())
	})
	interconnect.Register("ethernet", func() (interconnect.Interconnect, error) {
		return NewEthernet(DefaultEthernetConfig())
	})
}

// VBusConfig parameterizes the V-Bus card model.
type VBusConfig struct {
	// Link physics. Defaults (DefaultVBusConfig) reproduce the paper's
	// published ratios.
	LinkMode fabric.PipelineMode
	Lines    fabric.LineSet
	Margin   sim.Time
	Sampler  fabric.SkewSampler

	RouterLatency  sim.Time // per-hop wormhole routing latency
	BusArbitration sim.Time // virtual-bus construction cost

	// DMASetup is the per-message driver cost of the contiguous path.
	// It is small because the MPI-2 daemon and the device driver share
	// a message queue and data moves user-buffer -> driver-buffer
	// directly (§2.2), all in user mode (§7).
	DMASetup sim.Time
	// PIOPerElement is the programmed-I/O cost per element on the
	// strided path.
	PIOPerElement sim.Time
}

// DefaultVBusConfig is the calibration used throughout the repository:
// 32-bit FPGA links at 300ns nominal propagation with ±60ns per-line
// skew, SKWP with a 64ns sampling grid, 8ns margin. The resulting
// numbers land on the paper's published ratios simultaneously:
//
//   - SKWP launch interval ≈ 72ns → ~55 MB/s sustained, ≈ 4x Fast
//     Ethernet's 12.5 MB/s ("four times higher bandwidth");
//   - conventional pipelining ≈ 370ns interval → SKWP is ~5x faster
//     ("up to four times higher than conventional pipelining");
//   - small-message latency ≈ 30µs vs Ethernet's ~116µs ("about four
//     times lower latency").
func DefaultVBusConfig() VBusConfig {
	return VBusConfig{
		LinkMode:       fabric.SKWP,
		Lines:          fabric.NewLineSet(32, 300*sim.Nanosecond, 60*sim.Nanosecond, 1),
		Margin:         8 * sim.Nanosecond,
		Sampler:        fabric.SkewSampler{Resolution: 64 * sim.Nanosecond},
		RouterLatency:  60 * sim.Nanosecond,
		BusArbitration: 200 * sim.Nanosecond,
		DMASetup:       28 * sim.Microsecond,
		PIOPerElement:  900 * sim.Nanosecond,
	}
}

// VBus is the V-Bus network card cost model.
type VBus struct {
	cfg  VBusConfig
	link *fabric.Link
}

// NewVBus validates cfg and builds the card model.
func NewVBus(cfg VBusConfig) (*VBus, error) {
	if cfg.DMASetup < 0 || cfg.PIOPerElement < 0 || cfg.RouterLatency < 0 || cfg.BusArbitration < 0 {
		return nil, fmt.Errorf("nic: negative cost in VBusConfig")
	}
	l, err := fabric.NewLink(fabric.LinkConfig{
		Mode:    cfg.LinkMode,
		Lines:   cfg.Lines,
		Margin:  cfg.Margin,
		Sampler: cfg.Sampler,
	})
	if err != nil {
		return nil, fmt.Errorf("nic: %w", err)
	}
	return &VBus{cfg: cfg, link: l}, nil
}

// Name implements Card.
func (v *VBus) Name() string { return "vbus" }

// SendSetup implements Card.
func (v *VBus) SendSetup() sim.Time { return v.cfg.DMASetup }

// PerElementOverhead implements Card.
func (v *VBus) PerElementOverhead() sim.Time { return v.cfg.PIOPerElement }

// wireTime is the wormhole pipeline time for a payload over hops mesh
// channels (+2 for inject/eject).
func (v *VBus) wireTime(bytes, hops int) sim.Time {
	bpf := v.link.Width() / 8
	flits := (bytes + bpf - 1) / bpf
	if flits == 0 {
		flits = 1
	}
	head := sim.Time(hops+2) * (v.cfg.RouterLatency + v.link.PropagationDelay())
	return head + sim.Time(flits-1)*v.link.LaunchInterval()
}

// ContigTime implements Card: pure DMA + wire, no per-element work.
func (v *VBus) ContigTime(bytes, hops int) sim.Time {
	return v.wireTime(bytes, hops)
}

// StridedTime implements Card: every element costs a PIO store on top
// of the wire time of the gathered payload.
func (v *VBus) StridedTime(elems, elemSize, hops int) sim.Time {
	if elems <= 0 {
		return 0
	}
	return sim.Time(elems)*v.cfg.PIOPerElement + v.wireTime(elems*elemSize, hops)
}

// BroadcastTime implements Card using the hardware virtual bus: one
// arbitration, one stream, every node listens. The mesh geometry is
// assumed square-ish: diameter ≈ 2(ceil(sqrt(n))-1).
func (v *VBus) BroadcastTime(bytes, nodes int) sim.Time {
	if nodes <= 1 {
		return 0
	}
	side := 1
	for side*side < nodes {
		side++
	}
	diameter := 2 * (side - 1)
	bpf := v.link.Width() / 8
	flits := (bytes + bpf - 1) / bpf
	if flits == 0 {
		flits = 1
	}
	setup := v.cfg.BusArbitration + sim.Time(diameter)*v.link.PropagationDelay()
	stream := sim.Time(flits-1)*v.link.LaunchInterval() + v.link.PropagationDelay()
	return setup + stream
}

// SmallMessageLatency implements Card.
func (v *VBus) SmallMessageLatency() sim.Time {
	return v.SendSetup() + v.wireTime(8, 1)
}

// Caps implements Card: the §2.2 V-Bus data paths — DMA for
// contiguous transfers, programmed I/O per element for strided ones,
// the hardware virtual-bus broadcast, and wormhole routing whose cost
// grows with mesh distance.
func (v *VBus) Caps() interconnect.Caps {
	return interconnect.Caps{DMAContig: true, PIOStrided: true, HardwareBroadcast: true, HopSensitive: true}
}

// MeshConfig adapts the card's physics into a mesh.Config for the
// flit-level simulator, so microbenchmarks and the cost model share one
// parameterization.
func (v *VBus) MeshConfig(width, height int) mesh.Config {
	return mesh.Config{
		Width:          width,
		Height:         height,
		LinkMode:       v.cfg.LinkMode,
		Lines:          v.cfg.Lines,
		Margin:         v.cfg.Margin,
		Sampler:        v.cfg.Sampler,
		RouterLatency:  v.cfg.RouterLatency,
		BusArbitration: v.cfg.BusArbitration,
	}
}

// EthernetConfig parameterizes the Fast Ethernet reference card.
type EthernetConfig struct {
	BytesPerSecond float64  // wire bandwidth
	Latency        sim.Time // one-way small-message latency incl. kernel path
	SetupCost      sim.Time // per-message kernel/network-stack overhead
	PerElement     sim.Time // per-element cost of strided sends
}

// DefaultEthernetConfig models 100 Mb/s Fast Ethernet with a
// kernel-mediated stack: 12.5 MB/s wire rate and ~115 µs end-to-end
// small-message latency (driver + kernel + wire) — 2001-era numbers
// calibrated so the V-Bus card shows the paper's "about four times
// lower latency than the Fast Ethernet card".
func DefaultEthernetConfig() EthernetConfig {
	return EthernetConfig{
		BytesPerSecond: 12.5e6,
		Latency:        65 * sim.Microsecond,
		SetupCost:      50 * sim.Microsecond,
		PerElement:     1200 * sim.Nanosecond,
	}
}

// Ethernet is the Fast Ethernet reference card.
type Ethernet struct {
	cfg EthernetConfig
}

// NewEthernet validates cfg and builds the card model.
func NewEthernet(cfg EthernetConfig) (*Ethernet, error) {
	if cfg.BytesPerSecond <= 0 {
		return nil, fmt.Errorf("nic: ethernet bandwidth must be positive")
	}
	if cfg.Latency < 0 || cfg.SetupCost < 0 || cfg.PerElement < 0 {
		return nil, fmt.Errorf("nic: negative cost in EthernetConfig")
	}
	return &Ethernet{cfg: cfg}, nil
}

// Name implements Card.
func (e *Ethernet) Name() string { return "fast-ethernet" }

// SendSetup implements Card.
func (e *Ethernet) SendSetup() sim.Time { return e.cfg.SetupCost }

// PerElementOverhead implements Card.
func (e *Ethernet) PerElementOverhead() sim.Time { return e.cfg.PerElement }

func (e *Ethernet) wireTime(bytes int) sim.Time {
	return e.cfg.Latency + sim.FromSeconds(float64(bytes)/e.cfg.BytesPerSecond)
}

// ContigTime implements Card. Ethernet is a shared medium: hop count is
// irrelevant.
func (e *Ethernet) ContigTime(bytes, hops int) sim.Time {
	return e.wireTime(bytes)
}

// StridedTime implements Card.
func (e *Ethernet) StridedTime(elems, elemSize, hops int) sim.Time {
	if elems <= 0 {
		return 0
	}
	return sim.Time(elems)*e.cfg.PerElement + e.wireTime(elems*elemSize)
}

// BroadcastTime implements Card: no hardware broadcast, so a binomial
// software tree of ceil(log2(nodes)) point-to-point stages.
func (e *Ethernet) BroadcastTime(bytes, nodes int) sim.Time {
	if nodes <= 1 {
		return 0
	}
	stages := bits.Len(uint(nodes - 1))
	return sim.Time(stages) * (e.SendSetup() + e.wireTime(bytes))
}

// SmallMessageLatency implements Card.
func (e *Ethernet) SmallMessageLatency() sim.Time {
	return e.SendSetup() + e.wireTime(8)
}

// Caps implements Card: a kernel-mediated shared medium — no DMA
// fast path, per-element packing on strided sends, software-tree
// broadcasts, and no sensitivity to mesh placement.
func (e *Ethernet) Caps() interconnect.Caps {
	return interconnect.Caps{DMAContig: false, PIOStrided: true, HardwareBroadcast: false, HopSensitive: false}
}

// Compile-time interface checks.
var (
	_ Card = (*VBus)(nil)
	_ Card = (*Ethernet)(nil)
)
