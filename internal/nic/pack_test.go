package nic

import (
	"testing"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
)

// testMemCopyPerByte mirrors cluster.DefaultParams().CPU.MemCopyPerByte
// (~200 MB/s copy on 2001 SDRAM); cluster sits above nic, so the value
// is repeated here rather than imported.
const testMemCopyPerByte = 5 * sim.Nanosecond

func packModels(t *testing.T) map[string]PackModel {
	t.Helper()
	v, e := defaultCards(t)
	ideal, err := interconnect.New("ideal")
	if err != nil {
		t.Fatal(err)
	}
	return map[string]PackModel{
		"vbus":     {Card: v, MemCopyPerByte: testMemCopyPerByte},
		"ethernet": {Card: e, MemCopyPerByte: testMemCopyPerByte},
		"ideal":    {Card: ideal, MemCopyPerByte: testMemCopyPerByte},
	}
}

// Both real cards have a finite crossover, and CrossoverElems is exact:
// packing loses at crossover-1 and wins at crossover.
func TestPackCrossoverExact(t *testing.T) {
	models := packModels(t)
	for _, name := range []string{"vbus", "ethernet"} {
		m := models[name]
		x := m.CrossoverElems(8, 1)
		if x < 2 || x > 4096 {
			t.Fatalf("%s: crossover %d outside the plausible range [2,4096]", name, x)
		}
		if m.PackWins(int(x)-1, 8, 1) {
			t.Errorf("%s: packing already wins at %d, below the reported crossover %d", name, x-1, x)
		}
		if !m.PackWins(int(x), 8, 1) {
			t.Errorf("%s: packing does not win at the reported crossover %d", name, x)
		}
	}
}

// Both cost curves share the wire term, so the crossover cannot depend
// on hop distance — the property that lets the compiler stamp a single
// per-machine threshold instead of a per-pair one.
func TestPackCrossoverHopIndependent(t *testing.T) {
	for name, m := range packModels(t) {
		if a, b := m.CrossoverElems(8, 1), m.CrossoverElems(8, 3); a != b {
			t.Errorf("%s: crossover depends on hops: %d at 1 hop, %d at 3 hops", name, a, b)
		}
	}
}

// The idealized fabric charges nothing for PIO, so the pack path's
// memory copies can never pay off.
func TestPackNeverWinsOnIdeal(t *testing.T) {
	m := packModels(t)["ideal"]
	if x := m.CrossoverElems(8, 1); x != 0 {
		t.Fatalf("ideal fabric reports crossover %d, want 0 (never)", x)
	}
	if m.PackWins(1<<16, 8, 1) {
		t.Error("packing wins on the ideal fabric at 65536 elems")
	}
}

// Once packing wins it keeps winning: both curves are linear with
// constant slopes, and CrossoverElems' binary search relies on it.
func TestPackWinsMonotone(t *testing.T) {
	for name, m := range packModels(t) {
		won := false
		for e := 2; e <= 512; e++ {
			w := m.PackWins(e, 8, 1)
			if won && !w {
				t.Fatalf("%s: packing wins at %d elems but loses at %d", name, e-1, e)
			}
			won = w
		}
	}
}

// Degenerate shapes: a single element is already contiguous, and empty
// transfers cost nothing on either path.
func TestPackDegenerateShapes(t *testing.T) {
	for name, m := range packModels(t) {
		if m.PackWins(1, 8, 1) {
			t.Errorf("%s: single-element transfer packs", name)
		}
		if m.PackWins(0, 8, 1) {
			t.Errorf("%s: empty transfer packs", name)
		}
		if m.PIOTime(0, 8, 1) != 0 || m.PackedTime(0, 8, 1) != 0 {
			t.Errorf("%s: empty transfer has nonzero cost", name)
		}
	}
}
