package nic

import (
	"testing"

	"vbuscluster/internal/interconnect"
)

func newTestVBus3D(t *testing.T) *VBus3D {
	t.Helper()
	v, err := NewVBus3D(DefaultVBus3DConfig())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVBus3DRegistered(t *testing.T) {
	ic, err := interconnect.New("vbus3d")
	if err != nil {
		t.Fatalf("vbus3d not registered: %v", err)
	}
	if ic.Name() != "vbus3d" {
		t.Fatalf("Name() = %q", ic.Name())
	}
	caps := ic.Caps()
	if !caps.DMAContig || !caps.PIOStrided || !caps.HopSensitive {
		t.Fatalf("caps = %v, want dma+pio+hops", caps)
	}
	if caps.HardwareBroadcast {
		t.Fatal("3D torus has no virtual bus; HardwareBroadcast must be false")
	}
}

func TestVBus3DPreferredGeometry(t *testing.T) {
	v := newTestVBus3D(t)
	cases := []struct {
		n    int
		want [3]int
	}{
		{1, [3]int{1, 1, 1}},
		{4, [3]int{2, 2, 1}},
		{16, [3]int{4, 2, 2}},
		{64, [3]int{4, 4, 4}},
		{256, [3]int{8, 8, 4}},
		{1024, [3]int{16, 8, 8}},
		{100, [3]int{5, 5, 4}},
	}
	for _, cse := range cases {
		dims, torus := v.PreferredGeometry(cse.n)
		if !torus {
			t.Errorf("n=%d: torus off", cse.n)
		}
		if len(dims) != 3 {
			t.Fatalf("n=%d: %d dims", cse.n, len(dims))
		}
		got := [3]int{dims[0], dims[1], dims[2]}
		if got != cse.want {
			t.Errorf("n=%d: dims %v, want %v", cse.n, got, cse.want)
		}
		if dims[0]*dims[1]*dims[2] < cse.n {
			t.Errorf("n=%d: geometry %v too small", cse.n, dims)
		}
	}
}

// The torus hop advantage: at equal hop counts the 3D card is at
// least as fast as the 2D card (leaner RDMA setup), and a 1024-node
// worst-case path is far shorter — 16 torus hops vs 62 mesh hops.
func TestVBus3DBeatsVBusAtScale(t *testing.T) {
	v3 := newTestVBus3D(t)
	v2, err := NewVBus(DefaultVBusConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a, b := v3.SmallMessageLatency(), v2.SmallMessageLatency(); a >= b {
		t.Errorf("3D small-message latency %v not below 2D %v", a, b)
	}
	// Worst-case contiguous transfer across the respective 1024-node
	// geometries: 16x8x8 torus diameter 16, 32x32 mesh diameter 62.
	if a, b := v3.ContigTime(4096, 16), v2.ContigTime(4096, 62); a >= b {
		t.Errorf("3D worst-case contig %v not below 2D %v", a, b)
	}
}

func TestVBus3DBroadcastIsSoftwareTree(t *testing.T) {
	v := newTestVBus3D(t)
	if v.BroadcastTime(1024, 1) != 0 {
		t.Fatal("single-node broadcast should be free")
	}
	// log2 growth: doubling the node count past a power of two adds
	// exactly one stage.
	t64, t128 := v.BroadcastTime(1024, 64), v.BroadcastTime(1024, 128)
	if t128 <= t64 {
		t.Fatalf("tree broadcast not growing: %v then %v", t64, t128)
	}
	stage := v.SendSetup() + v.wireTime(1024, 1)
	if t128-t64 != stage {
		t.Fatalf("stage delta %v, want %v", t128-t64, stage)
	}
}

func TestVBus3DValidation(t *testing.T) {
	cfg := DefaultVBus3DConfig()
	cfg.DMASetup = -1
	if _, err := NewVBus3D(cfg); err == nil {
		t.Fatal("negative DMASetup accepted")
	}
}
