package core

import (
	"fmt"
	"strings"
	"time"

	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// Pass identifies one named stage of the compiler pipeline. The
// pipeline is the paper's Figure 1 unrolled: the front-end analysis
// passes followed by the MPI-2 postpass interior stages.
type Pass struct {
	Name string
	Desc string
}

// Passes returns the canonical ordered pipeline Compile runs. The
// grain-select pass only executes under Options.AutoGrain, and the
// postpass stages repeat once per candidate grain in that mode.
func Passes() []Pass {
	return []Pass{
		{"parse", "Fortran 77 source to AST"},
		{"inline", "inline subroutine calls into the main unit"},
		{"const-prop", "fold and propagate compile-time constants"},
		{"induction", "substitute induction variables, refold constants"},
		{"parallel-detect", "mark DO loops safe to run in parallel"},
		{"partition", "resolve loop bounds, analyze split LMAD regions"},
		{"spmdize", "segment main into sequential/parallel regions"},
		{"scatter-collect", "generate comm ops from split LMADs (§5.4)"},
		{"grain-opt", "§5.6 race check: demote unsafe approximate collects"},
		{"coalesce", "pack strided transfers past the NIC's pack/PIO crossover"},
		{"avpg", "array-value propagation graph: eliminate redundant comm"},
		{"env-gen", "MPI environment generation: memory windows (§5.1)"},
		{"resilience", "group regions into checkpoint epochs for restart"},
		{"grain-select", "price each grain with the interconnect model, keep cheapest"},
	}
}

// passDesc maps a pass name to its canonical description.
var passDesc = func() map[string]string {
	m := make(map[string]string)
	for _, p := range Passes() {
		m[p.Name] = p.Desc
	}
	return m
}()

// PassRecord is one executed pass with its wall-clock time and a short
// note about what it did.
type PassRecord struct {
	Pass
	Wall time.Duration
	Note string
}

// PassDump is the IR snapshot captured after one pass.
type PassDump struct {
	Pass string
	Text string
}

// PassTrace collects per-pass timing and optional IR/LMAD dumps during
// Compile. A nil *PassTrace is valid and records nothing (the passes
// still run). Surfaced through vbcc -passes.
type PassTrace struct {
	// DumpAfter selects a pass name whose post-state is captured into
	// Dumps ("all" captures every pass; "" none).
	DumpAfter string
	Records   []PassRecord
	Dumps     []PassDump
}

// record appends one executed pass. dump may be nil when the pass has
// no meaningful IR snapshot.
func (t *PassTrace) record(name string, wall time.Duration, note string, dump func() string) {
	if t == nil {
		return
	}
	t.Records = append(t.Records, PassRecord{
		Pass: Pass{Name: name, Desc: passDesc[name]},
		Wall: wall,
		Note: note,
	})
	if dump != nil && (t.DumpAfter == "all" || t.DumpAfter == name) {
		t.Dumps = append(t.Dumps, PassDump{Pass: name, Text: dump()})
	}
}

// run times fn as the named pass and records it. fn returns the note;
// on error the pass is recorded with the error as its note and the
// error propagates.
func (t *PassTrace) run(name string, fn func() (string, error), dump func() string) error {
	start := time.Now()
	note, err := fn()
	if err != nil {
		t.record(name, time.Since(start), "error: "+err.Error(), nil)
		return err
	}
	t.record(name, time.Since(start), note, dump)
	return nil
}

// AddToRecorder folds the executed passes into an event recorder as a
// compiler track (rank -1): back-to-back spans whose lengths are the
// passes' wall-clock times, so `vbrun -trace` / `vbcc -trace` export
// compile and run phases into one Perfetto-loadable timeline. Safe on
// a nil trace or nil recorder.
func (t *PassTrace) AddToRecorder(r *trace.Recorder) {
	if t == nil || r == nil {
		return
	}
	var cursor sim.Time
	for _, rec := range t.Records {
		d := sim.Time(rec.Wall.Nanoseconds()) * sim.Nanosecond
		if d < 0 {
			d = 0
		}
		r.Add(trace.Event{
			Rank:   trace.CompilerRank,
			Op:     rec.Name,
			Peer:   -1,
			Begin:  cursor,
			End:    cursor + d,
			Detail: rec.Note,
		})
		cursor += d
	}
}

// DumpsList returns the captured IR dumps; safe on a nil trace.
func (t *PassTrace) DumpsList() []PassDump {
	if t == nil {
		return nil
	}
	return t.Dumps
}

// String renders the trace as an aligned table.
func (t *PassTrace) String() string {
	if t == nil || len(t.Records) == 0 {
		return ""
	}
	nameW := len("pass")
	for _, r := range t.Records {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s  %12s  %s\n", nameW, "pass", "wall", "note")
	for _, r := range t.Records {
		fmt.Fprintf(&sb, "%-*s  %12s  %s\n", nameW, r.Name, r.Wall.Round(time.Microsecond), r.Note)
	}
	return sb.String()
}
