// Package core is the public face of the reproduction: the end-to-end
// compiler pipeline of the paper's Figure 1 (front end → LMAD analysis
// → MPI-2 postpass) plus runners that execute the result on the
// simulated V-Bus cluster.
//
// Typical use:
//
//	c, err := core.Compile(src, core.Options{NumProcs: 4, Grain: lmad.Coarse})
//	seq, err := c.RunSequential(core.Timing)
//	par, err := c.RunParallel(core.Timing)
//	speedup := float64(seq.Elapsed) / float64(par.Elapsed)
package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"vbuscluster/internal/analysis"
	"vbuscluster/internal/cluster"
	"vbuscluster/internal/f77"
	"vbuscluster/internal/fault"
	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/interp"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/postpass"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// Mode re-exports the interpreter's execution fidelity.
type Mode = interp.Mode

// Execution modes.
const (
	// Full executes every iteration and moves real data.
	Full = interp.Full
	// Timing charges identical virtual time without executing compute
	// loops or copying transfer payloads.
	Timing = interp.Timing
)

// Options configures a compilation.
type Options struct {
	// NumProcs is the SPMD process count (default 4, the paper's
	// configuration).
	NumProcs int
	// Grain is the §5.6 communication granularity (default Fine).
	Grain lmad.Grain
	// NoLiveOut lets the AVPG drop collects of values that are dead at
	// program end. The default (false) keeps every final value on the
	// master so results can be inspected.
	NoLiveOut bool
	// AutoGrain makes the compiler pick the granularity itself by
	// statically pricing the communication plan of each grain with the
	// machine's NIC model and keeping the cheapest — automating the
	// choice the paper leaves "up to the user" (§5.6 suggests profiling
	// tools for exactly this decision). Grain is ignored when set.
	AutoGrain bool
	// LockReductions selects the paper's §3 lock-based reduction
	// combining (MPI_WIN_LOCK critical sections on the master) instead
	// of an Allreduce tree.
	LockReductions bool
	// PullScatter lets slaves GET their scatter regions from the master
	// concurrently instead of the master PUTting serially (§2.2: either
	// end can drive a one-sided transfer).
	PullScatter bool
	// TwoSided generates MPI-1 SEND/RECEIVE pairs instead of one-sided
	// PUT/GET — the baseline the paper's one-sided design argues
	// against (for the ablation benchmark).
	TwoSided bool
	// Params overrides the machine model (default cluster.DefaultParams
	// widened to fit NumProcs).
	Params *cluster.Params
	// Fabric selects a registered interconnect backend by name ("vbus",
	// "ethernet", "ideal", ...) when Params is nil. Empty means the
	// default V-Bus machine. See internal/interconnect.
	Fabric string
	// Trace, when non-nil, collects per-pass timing and optional IR
	// dumps as the pipeline runs (vbcc -passes).
	Trace *PassTrace
	// Recorder, when non-nil, is attached to every cluster the
	// compiled program runs on, recording the per-rank event timeline
	// (vbrun -trace / -profile). Attach a fresh recorder per run when
	// timelines must not mix.
	Recorder *trace.Recorder
	// Faults, when non-nil, injects deterministic faults into every
	// cluster the compiled program runs on (vbrun/vbbench -faults):
	// flit drops and corruption priced through the reliable transport,
	// link outages, slow and crashing nodes, V-Bus acquisition failures
	// and per-operation deadlines. See internal/fault.
	Faults *fault.Injector
	// Resilient emits restart-capable SPMD code (regions grouped into
	// checkpoint epochs, AVPG elimination disabled) so RunResilient can
	// survive rank crashes via coordinated checkpoint/restart plus
	// ULFM-style shrink-and-recover (vbrun -resilient).
	Resilient bool
	// CkptEvery is the checkpoint cadence in parallel regions per epoch
	// (minimum 1; only meaningful with Resilient). vbrun -ckpt-every.
	CkptEvery int
	// CkptDir, when non-empty, persists each epoch's checkpoint blob to
	// disk under this directory; empty keeps checkpoints in memory only.
	CkptDir string
	// Coalesce enables the postpass coalesce stage: strided
	// scatter/collect transfers at or above the machine's pack crossover
	// are rewritten into pack → contiguous DMA burst → unpack
	// (vbcc/vbrun/vbbench -coalesce). Off by default, keeping every
	// translation and table bit-identical to earlier builds.
	Coalesce bool
	// Workers bounds the number of rank goroutines executing
	// concurrently (vbrun/vbbench -workers). Zero uses
	// runtime.GOMAXPROCS(0); negative launches one free-running
	// goroutine per rank. Results are bit-identical across all
	// settings. See interp.RunConfig.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.NumProcs == 0 {
		o.NumProcs = 4
	}
	return o
}

// Compiled is a translated program ready to run.
type Compiled struct {
	// Prog is the analyzed program (inlined main, loops annotated).
	Prog *f77.Program
	// SPMD is the MPI-2 postpass output.
	SPMD *postpass.Program
	opts Options
}

// Compile runs the whole pipeline on Fortran 77 source, as the
// ordered, named pass sequence reported by Passes(): the front-end
// analysis passes, then the postpass stages (repeated per candidate
// grain under AutoGrain, then grain-select prices them).
func Compile(src string, opts Options) (*Compiled, error) {
	opts = opts.withDefaults()
	if opts.Params == nil && opts.Fabric != "" {
		params, err := cluster.ParamsForFabric(opts.Fabric)
		if err != nil {
			return nil, err
		}
		opts.Params = &params
	}
	tr := opts.Trace

	// ---- Front end (Figure 1 FE box), one pass at a time.
	var prog *f77.Program
	if err := tr.run("parse", func() (string, error) {
		var err error
		prog, err = f77.Parse(src)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d units", len(prog.Units)), nil
	}, func() string { return f77.Format(prog) }); err != nil {
		return nil, err
	}
	if err := tr.run("inline", func() (string, error) {
		if err := analysis.InlineCalls(prog); err != nil {
			return "", err
		}
		return fmt.Sprintf("%d units after inlining", len(prog.Units)), nil
	}, func() string { return f77.Format(prog) }); err != nil {
		return nil, err
	}
	main := prog.Main()
	tr.run("const-prop", func() (string, error) {
		analysis.PropagateConstants(main)
		return "", nil
	}, func() string { return f77.Format(prog) })
	tr.run("induction", func() (string, error) {
		analysis.SubstituteInductions(main)
		analysis.PropagateConstants(main) // fold the induction temporaries' initial values
		return "", nil
	}, func() string { return f77.Format(prog) })
	tr.run("parallel-detect", func() (string, error) {
		analysis.DetectParallel(main)
		n := 0
		if main != nil {
			f77.WalkStmts(main.Body, func(s f77.Stmt) bool {
				if l, ok := s.(*f77.DoLoop); ok && l.Parallel {
					n++
				}
				return true
			})
		}
		return fmt.Sprintf("%d parallel loops", n), nil
	}, func() string { return f77.Format(prog) })

	// ---- MPI-2 postpass, staged (internal/postpass).
	machine := machineParams(opts.Params, opts.NumProcs)
	translate := func(g lmad.Grain, annotate string) (*postpass.Program, error) {
		var hook postpass.StageHook
		if tr != nil {
			hook = func(stage string, wall time.Duration, note string, p *postpass.Program) {
				if annotate != "" {
					if note != "" {
						note += ", "
					}
					note += annotate
				}
				tr.record(stage, wall, note, func() string { return p.String() })
			}
		}
		return postpass.TranslateStaged(prog, postpass.Options{
			NumProcs:       opts.NumProcs,
			Grain:          g,
			LiveOutAll:     !opts.NoLiveOut,
			LockReductions: opts.LockReductions,
			PullScatter:    opts.PullScatter,
			TwoSided:       opts.TwoSided,
			Resilient:      opts.Resilient,
			CkptEvery:      opts.CkptEvery,
			Coalesce:       opts.Coalesce,
			Machine:        &machine,
		}, hook)
	}
	if opts.AutoGrain {
		params := machine
		var cands []*postpass.Program
		for _, g := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
			pp, err := translate(g, "grain="+g.String())
			if err != nil {
				return nil, err
			}
			cands = append(cands, pp)
		}
		var best *postpass.Program
		var bestCost sim.Time
		tr.run("grain-select", func() (string, error) {
			var parts []string
			for _, pp := range cands {
				cost := postpass.EstimateCommCost(pp, params)
				parts = append(parts, fmt.Sprintf("%s=%v", pp.Opts.Grain, cost))
				if best == nil || cost < bestCost {
					best, bestCost = pp, cost
				}
			}
			return fmt.Sprintf("%s -> picked %s", strings.Join(parts, ", "), best.Opts.Grain), nil
		}, nil)
		opts.Grain = best.Opts.Grain
		return &Compiled{Prog: prog, SPMD: best, opts: opts}, nil
	}
	pp, err := translate(opts.Grain, "")
	if err != nil {
		return nil, err
	}
	return &Compiled{Prog: prog, SPMD: pp, opts: opts}, nil
}

// Grain reports the granularity the compilation used (interesting with
// AutoGrain).
func (c *Compiled) Grain() lmad.Grain { return c.SPMD.Opts.Grain }

// MeshFor picks a mesh geometry that fits n processes (the smallest
// near-square mesh).
func MeshFor(n int) (w, h int) {
	w = 1
	for w*w < n {
		w++
	}
	h = (n + w - 1) / w
	return w, h
}

// machineParams resolves the machine model for n processes: the
// override (or the default parameters) with the mesh sized to fit n.
// A fabric with a geometry preference (interconnect.GeometryHinter —
// the 3D-torus card) picks its own dimensions; otherwise the 2D mesh
// widens to the smallest near-square geometry that fits. An explicit
// MeshDims override always wins. Both the AutoGrain pricing and
// cluster construction go through here so the compiler prices exactly
// the machine the program will run on.
func machineParams(override *cluster.Params, n int) cluster.Params {
	params := cluster.DefaultParams()
	if override != nil {
		params = *override
	}
	if len(params.MeshDims) == 0 {
		if h, ok := params.Fabric.(interconnect.GeometryHinter); ok {
			params.MeshDims, params.Torus = h.PreferredGeometry(n)
		} else if params.MeshWidth*params.MeshHeight < n {
			params.MeshWidth, params.MeshHeight = MeshFor(n)
		}
	}
	return params
}

// RunParams configure one execution of a Compiled independently of its
// compile-time Options, so one cached compilation can drive many runs
// — including concurrent ones on separate simulated clusters (the
// vbserve plan cache). A run must not inherit the recorder or fault
// injector baked in at compile time: two concurrent runs sharing one
// recorder would interleave their timelines into a single corrupt
// trace. The zero value runs exactly like RunParallel with a nil
// Options.Recorder/Faults.
type RunParams struct {
	// Recorder, when non-nil, collects this run's per-rank event
	// timeline. Use a fresh recorder per run.
	Recorder *trace.Recorder
	// Faults, when non-nil, injects deterministic faults into this
	// run's cluster.
	Faults *fault.Injector
	// Workers bounds the rank scheduler's worker pool for this run
	// (same semantics as Options.Workers).
	Workers int
	// Ctx, when non-nil, bounds the run: cancelling it (a job
	// deadline, a client abort) stops the simulated cluster and the
	// run returns an mpi.Error of kind ErrCancelled. Nil means
	// unbounded.
	Ctx context.Context
}

// clusterFor builds the machine for n processes, with the compile
// options' event recorder (if any) attached.
func (c *Compiled) clusterFor(n int) (*cluster.Cluster, error) {
	return c.clusterWith(n, RunParams{Recorder: c.opts.Recorder, Faults: c.opts.Faults})
}

// clusterWith builds the machine for n processes with per-run
// recorder and fault overrides.
func (c *Compiled) clusterWith(n int, rp RunParams) (*cluster.Cluster, error) {
	params := machineParams(c.opts.Params, n)
	if rp.Faults != nil {
		params.Faults = rp.Faults
	}
	cl, err := cluster.New(n, params)
	if err != nil {
		return nil, err
	}
	cl.SetRecorder(rp.Recorder)
	return cl, nil
}

// RunSequential executes the baseline on one processor.
func (c *Compiled) RunSequential(mode Mode) (*interp.Result, error) {
	cl, err := c.clusterFor(1)
	if err != nil {
		return nil, err
	}
	return interp.RunSequential(c.Prog, cl, mode)
}

// RunParallel executes the SPMD translation on NumProcs processors.
func (c *Compiled) RunParallel(mode Mode) (*interp.Result, error) {
	return c.RunParallelWith(mode, RunParams{
		Recorder: c.opts.Recorder,
		Faults:   c.opts.Faults,
		Workers:  c.opts.Workers,
	})
}

// RunParallelWith executes the SPMD translation on NumProcs processors
// with per-run overrides. The compiled plan itself is immutable at run
// time (every run builds its own cluster, MPI world and per-rank
// environments), so concurrent RunParallelWith calls on one Compiled
// are safe as long as each passes its own RunParams.Recorder.
func (c *Compiled) RunParallelWith(mode Mode, rp RunParams) (*interp.Result, error) {
	cl, err := c.clusterWith(c.opts.NumProcs, rp)
	if err != nil {
		return nil, err
	}
	return interp.RunParallelConfig(c.SPMD, cl, mode, interp.RunConfig{Workers: rp.Workers, Ctx: rp.Ctx})
}

// RunResilient executes the SPMD translation with coordinated
// checkpoint/restart: epochs from the resilience pass run under a
// crash supervisor that, on a rank failure, agrees on the failed set,
// shrinks the communicator to the survivors, retranslates the program
// for the smaller rank count, restores the last checkpoint and
// replays. Requires Options.Resilient.
func (c *Compiled) RunResilient(mode Mode) (*interp.Result, error) {
	if !c.opts.Resilient {
		return nil, fmt.Errorf("core: RunResilient needs Options.Resilient")
	}
	cl, err := c.clusterFor(c.opts.NumProcs)
	if err != nil {
		return nil, err
	}
	// Recompiling for a shrunken world reruns only the postpass — the
	// front-end analysis on Prog is rank-count independent.
	retranslate := func(n int) (*postpass.Program, error) {
		machine := machineParams(c.opts.Params, n)
		return postpass.Translate(c.Prog, postpass.Options{
			NumProcs:       n,
			Grain:          c.SPMD.Opts.Grain,
			LiveOutAll:     !c.opts.NoLiveOut,
			LockReductions: c.opts.LockReductions,
			PullScatter:    c.opts.PullScatter,
			TwoSided:       c.opts.TwoSided,
			Resilient:      true,
			CkptEvery:      c.opts.CkptEvery,
			Coalesce:       c.opts.Coalesce,
			Machine:        &machine,
		})
	}
	return interp.RunResilient(c.SPMD, cl, mode, interp.ResilientConfig{
		Retranslate: retranslate,
		Dir:         c.opts.CkptDir,
		Workers:     c.opts.Workers,
	})
}

// Speedup compiles nothing new: it runs both baseline and SPMD versions
// in timing mode and reports sequential/parallel.
func (c *Compiled) Speedup() (float64, error) {
	seq, err := c.RunSequential(Timing)
	if err != nil {
		return 0, err
	}
	par, err := c.RunParallel(Timing)
	if err != nil {
		return 0, err
	}
	if par.Elapsed == 0 {
		return 0, fmt.Errorf("core: parallel run took no virtual time")
	}
	return float64(seq.Elapsed) / float64(par.Elapsed), nil
}

// Report renders the postpass translation report.
func (c *Compiled) Report() string { return c.SPMD.String() }
