// Package core is the public face of the reproduction: the end-to-end
// compiler pipeline of the paper's Figure 1 (front end → LMAD analysis
// → MPI-2 postpass) plus runners that execute the result on the
// simulated V-Bus cluster.
//
// Typical use:
//
//	c, err := core.Compile(src, core.Options{NumProcs: 4, Grain: lmad.Coarse})
//	seq, err := c.RunSequential(core.Timing)
//	par, err := c.RunParallel(core.Timing)
//	speedup := float64(seq.Elapsed) / float64(par.Elapsed)
package core

import (
	"fmt"

	"vbuscluster/internal/analysis"
	"vbuscluster/internal/cluster"
	"vbuscluster/internal/f77"
	"vbuscluster/internal/interp"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/postpass"
	"vbuscluster/internal/sim"
)

// Mode re-exports the interpreter's execution fidelity.
type Mode = interp.Mode

// Execution modes.
const (
	// Full executes every iteration and moves real data.
	Full = interp.Full
	// Timing charges identical virtual time without executing compute
	// loops or copying transfer payloads.
	Timing = interp.Timing
)

// Options configures a compilation.
type Options struct {
	// NumProcs is the SPMD process count (default 4, the paper's
	// configuration).
	NumProcs int
	// Grain is the §5.6 communication granularity (default Fine).
	Grain lmad.Grain
	// NoLiveOut lets the AVPG drop collects of values that are dead at
	// program end. The default (false) keeps every final value on the
	// master so results can be inspected.
	NoLiveOut bool
	// AutoGrain makes the compiler pick the granularity itself by
	// statically pricing the communication plan of each grain with the
	// machine's NIC model and keeping the cheapest — automating the
	// choice the paper leaves "up to the user" (§5.6 suggests profiling
	// tools for exactly this decision). Grain is ignored when set.
	AutoGrain bool
	// LockReductions selects the paper's §3 lock-based reduction
	// combining (MPI_WIN_LOCK critical sections on the master) instead
	// of an Allreduce tree.
	LockReductions bool
	// PullScatter lets slaves GET their scatter regions from the master
	// concurrently instead of the master PUTting serially (§2.2: either
	// end can drive a one-sided transfer).
	PullScatter bool
	// TwoSided generates MPI-1 SEND/RECEIVE pairs instead of one-sided
	// PUT/GET — the baseline the paper's one-sided design argues
	// against (for the ablation benchmark).
	TwoSided bool
	// Params overrides the machine model (default cluster.DefaultParams
	// widened to fit NumProcs).
	Params *cluster.Params
}

func (o Options) withDefaults() Options {
	if o.NumProcs == 0 {
		o.NumProcs = 4
	}
	return o
}

// Compiled is a translated program ready to run.
type Compiled struct {
	// Prog is the analyzed program (inlined main, loops annotated).
	Prog *f77.Program
	// SPMD is the MPI-2 postpass output.
	SPMD *postpass.Program
	opts Options
}

// Compile runs the whole pipeline on Fortran 77 source.
func Compile(src string, opts Options) (*Compiled, error) {
	opts = opts.withDefaults()
	prog, err := f77.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := analysis.FrontEnd(prog); err != nil {
		return nil, err
	}
	translate := func(g lmad.Grain) (*postpass.Program, error) {
		return postpass.Translate(prog, postpass.Options{
			NumProcs:       opts.NumProcs,
			Grain:          g,
			LiveOutAll:     !opts.NoLiveOut,
			LockReductions: opts.LockReductions,
			PullScatter:    opts.PullScatter,
			TwoSided:       opts.TwoSided,
		})
	}
	if opts.AutoGrain {
		params := cluster.DefaultParams()
		if opts.Params != nil {
			params = *opts.Params
		}
		if params.MeshWidth*params.MeshHeight < opts.NumProcs {
			params.MeshWidth, params.MeshHeight = MeshFor(opts.NumProcs)
		}
		var best *postpass.Program
		var bestCost sim.Time
		for _, g := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
			pp, err := translate(g)
			if err != nil {
				return nil, err
			}
			cost := postpass.EstimateCommCost(pp, params)
			if best == nil || cost < bestCost {
				best, bestCost = pp, cost
			}
		}
		opts.Grain = best.Opts.Grain
		return &Compiled{Prog: prog, SPMD: best, opts: opts}, nil
	}
	pp, err := translate(opts.Grain)
	if err != nil {
		return nil, err
	}
	return &Compiled{Prog: prog, SPMD: pp, opts: opts}, nil
}

// Grain reports the granularity the compilation used (interesting with
// AutoGrain).
func (c *Compiled) Grain() lmad.Grain { return c.SPMD.Opts.Grain }

// MeshFor picks a mesh geometry that fits n processes (the smallest
// near-square mesh).
func MeshFor(n int) (w, h int) {
	w = 1
	for w*w < n {
		w++
	}
	h = (n + w - 1) / w
	return w, h
}

// clusterFor builds the machine for n processes.
func (c *Compiled) clusterFor(n int) (*cluster.Cluster, error) {
	var params cluster.Params
	if c.opts.Params != nil {
		params = *c.opts.Params
	} else {
		params = cluster.DefaultParams()
	}
	if params.MeshWidth*params.MeshHeight < n {
		params.MeshWidth, params.MeshHeight = MeshFor(n)
	}
	return cluster.New(n, params)
}

// RunSequential executes the baseline on one processor.
func (c *Compiled) RunSequential(mode Mode) (*interp.Result, error) {
	cl, err := c.clusterFor(1)
	if err != nil {
		return nil, err
	}
	return interp.RunSequential(c.Prog, cl, mode)
}

// RunParallel executes the SPMD translation on NumProcs processors.
func (c *Compiled) RunParallel(mode Mode) (*interp.Result, error) {
	cl, err := c.clusterFor(c.opts.NumProcs)
	if err != nil {
		return nil, err
	}
	return interp.RunParallel(c.SPMD, cl, mode)
}

// Speedup compiles nothing new: it runs both baseline and SPMD versions
// in timing mode and reports sequential/parallel.
func (c *Compiled) Speedup() (float64, error) {
	seq, err := c.RunSequential(Timing)
	if err != nil {
		return 0, err
	}
	par, err := c.RunParallel(Timing)
	if err != nil {
		return 0, err
	}
	if par.Elapsed == 0 {
		return 0, fmt.Errorf("core: parallel run took no virtual time")
	}
	return float64(seq.Elapsed) / float64(par.Elapsed), nil
}

// Report renders the postpass translation report.
func (c *Compiled) Report() string { return c.SPMD.String() }
