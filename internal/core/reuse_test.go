package core_test

import (
	"fmt"
	"sync"
	"testing"

	"vbuscluster/internal/bench"
	"vbuscluster/internal/core"
	"vbuscluster/internal/trace"
)

// TestCompiledConcurrentReuse is the plan-cache safety contract: one
// cached Compiled must be able to drive several concurrent clusters
// (vbserve runs repeat submissions of a cached plan on N worker
// clusters at once) with no shared mutable state. Run under -race
// (make ci does), this fails on any run-time write into the shared
// AST, postpass program or plan structures; without -race it still
// pins bit-identical results across all concurrent runs.
func TestCompiledConcurrentReuse(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		opts core.Options
	}{
		{"one-sided", bench.MMSource(24), core.Options{NumProcs: 4}},
		{"two-sided", bench.MMSource(24), core.Options{NumProcs: 4, TwoSided: true}},
		{"pull-scatter", bench.MMSource(24), core.Options{NumProcs: 4, PullScatter: true}},
		{"coalesce", bench.CFFTSource(8), core.Options{NumProcs: 4, Coalesce: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			testConcurrentReuse(t, tc.src, tc.opts)
		})
	}
}

func testConcurrentReuse(t *testing.T, src string, opts core.Options) {
	c, err := core.Compile(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.RunParallelWith(core.Full, core.RunParams{})
	if err != nil {
		t.Fatal(err)
	}

	const concurrent = 6
	results := make([]struct {
		out     string
		elapsed int64
		events  int
	}, concurrent)
	errs := make([]error, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half the runs are core.Full, half core.Timing, each with its own
			// recorder: the mix exercises both execution paths against
			// the same shared plan at once.
			mode := core.Full
			if i%2 == 1 {
				mode = core.Timing
			}
			rec := trace.New()
			res, err := c.RunParallelWith(mode, core.RunParams{Recorder: rec})
			if err != nil {
				errs[i] = err
				return
			}
			results[i].out = res.Output
			results[i].elapsed = int64(res.Elapsed)
			results[i].events = rec.Len()
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent run %d: %v", i, err)
		}
	}
	for i, r := range results {
		if r.elapsed != int64(ref.Elapsed) {
			t.Errorf("run %d: elapsed %d, reference %d", i, r.elapsed, int64(ref.Elapsed))
		}
		if i%2 == 0 && r.out != ref.Output {
			t.Errorf("run %d: output %q, reference %q", i, r.out, ref.Output)
		}
		if r.events == 0 {
			t.Errorf("run %d: per-run recorder saw no events", i)
		}
		// Every run must record the same timeline length: a shared
		// recorder (the bug RunParams exists to prevent) would instead
		// accumulate events across runs.
		if r.events != results[0].events {
			t.Errorf("run %d: %d trace events, run 0 recorded %d", i, r.events, results[0].events)
		}
	}
}

// TestCompiledConcurrentReuseAutoGrain covers the cache's other hot
// entry: an AutoGrain compilation (three candidate translations priced,
// one kept) reused across concurrent clusters.
func TestCompiledConcurrentReuseAutoGrain(t *testing.T) {
	c, err := core.Compile(bench.CFFTSource(7), core.Options{NumProcs: 4, AutoGrain: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.RunParallelWith(core.Full, core.RunParams{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.RunParallelWith(core.Full, core.RunParams{})
			if err == nil && res.Output != ref.Output {
				err = fmt.Errorf("output %q differs from reference %q", res.Output, ref.Output)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent auto-grain run %d: %v", i, err)
		}
	}
}
