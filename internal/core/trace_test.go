package core

import (
	"testing"

	"vbuscluster/internal/lmad"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// A recorder attached through Options flows to the run's cluster and
// fills with events whose bytes reconcile with the run report.
func TestRecorderWiring(t *testing.T) {
	rec := trace.New()
	c, err := Compile(testSrc, Options{NumProcs: 4, Grain: lmad.Fine, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunParallel(Timing)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
	byRank := map[int]int64{}
	for _, e := range rec.Events() {
		byRank[e.Rank] += e.Bytes
	}
	for r, want := range res.Report.CommBytes {
		if byRank[r] != want {
			t.Fatalf("rank %d traced %d bytes, report says %d", r, byRank[r], want)
		}
	}
}

// Attaching a recorder must not change virtual time or accounting by a
// single picosecond — tracing is observation only.
func TestRecorderDoesNotChangeTiming(t *testing.T) {
	run := func(rec *trace.Recorder) (sim.Time, sim.Time, int64) {
		c, err := Compile(testSrc, Options{NumProcs: 4, Grain: lmad.Fine, Recorder: rec})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.RunParallel(Timing)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed, res.Report.TotalXferTime(), res.Report.TotalCommBytes()
	}
	e0, x0, b0 := run(nil)
	e1, x1, b1 := run(trace.New())
	if e0 != e1 || x0 != x1 || b0 != b1 {
		t.Fatalf("tracing perturbed the run: elapsed %v vs %v, xfer %v vs %v, bytes %d vs %d",
			e0, e1, x0, x1, b0, b1)
	}
}

// PassTrace.AddToRecorder lays the pass pipeline onto the compiler
// track as contiguous spans in pipeline order.
func TestPassTraceAddToRecorder(t *testing.T) {
	pt := &PassTrace{}
	if _, err := Compile(testSrc, Options{NumProcs: 4, Trace: pt}); err != nil {
		t.Fatal(err)
	}
	rec := trace.New()
	pt.AddToRecorder(rec)
	evs := rec.Events()
	if len(evs) != len(pt.Records) {
		t.Fatalf("recorder has %d spans, trace has %d passes", len(evs), len(pt.Records))
	}
	var cursor sim.Time
	for i, e := range evs {
		if e.Rank != trace.CompilerRank {
			t.Fatalf("pass span %d on rank %d, want %d", i, e.Rank, trace.CompilerRank)
		}
		if e.Begin != cursor {
			t.Fatalf("pass span %d begins at %v, want contiguous %v", i, e.Begin, cursor)
		}
		if e.End < e.Begin {
			t.Fatalf("pass span %d has end < begin", i)
		}
		cursor = e.End
	}
	// Pass names must match the pipeline order.
	for i, r := range pt.Records {
		if evs[i].Op != r.Name {
			t.Fatalf("span %d is %q, pipeline pass is %q", i, evs[i].Op, r.Name)
		}
	}
	// nil safety both ways.
	pt.AddToRecorder(nil)
	(*PassTrace)(nil).AddToRecorder(rec)
}
