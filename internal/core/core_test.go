package core

import (
	"math"
	"strings"
	"testing"

	"vbuscluster/internal/cluster"
	"vbuscluster/internal/lmad"
	"vbuscluster/internal/nic"
	"vbuscluster/internal/postpass"
)

const testSrc = `
      PROGRAM T
      INTEGER N
      PARAMETER (N = 48)
      REAL A(N), B(N), S
      INTEGER I
      DO I = 1, N
        B(I) = REAL(I)
      ENDDO
      DO I = 1, N
        A(I) = B(I) * 2.0
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + A(I)
      ENDDO
      PRINT *, S
      END
`

func TestCompileDefaults(t *testing.T) {
	c, err := Compile(testSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.SPMD.Opts.NumProcs != 4 {
		t.Fatalf("default procs = %d", c.SPMD.Opts.NumProcs)
	}
	if !c.SPMD.Opts.LiveOutAll {
		t.Fatal("LiveOutAll should default on")
	}
}

func TestEndToEndSpeedup(t *testing.T) {
	c, err := Compile(testSrc, Options{NumProcs: 4, Grain: lmad.Coarse})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Speedup()
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("speedup = %v", s)
	}
}

func TestFullModeResultsAgree(t *testing.T) {
	c, err := Compile(testSrc, Options{NumProcs: 3, Grain: lmad.Fine})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := c.RunSequential(Full)
	if err != nil {
		t.Fatal(err)
	}
	par, err := c.RunParallel(Full)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 * 48.0 * 49.0 / 2.0
	for _, res := range []string{seq.Output, par.Output} {
		if !strings.Contains(res, "2352") {
			t.Fatalf("checksum missing (want %v): %q", want, res)
		}
	}
	for i := range seq.Mem["A"] {
		if math.Abs(seq.Mem["A"][i]-par.Mem["A"][i]) > 0 {
			t.Fatalf("A[%d] differs", i)
		}
	}
}

func TestMeshFor(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{1, 1, 1}, {2, 2, 1}, {3, 2, 2}, {4, 2, 2}, {5, 3, 2}, {7, 3, 3},
		{9, 3, 3}, {16, 4, 4}, {17, 5, 4},
	}
	for _, c := range cases {
		w, h := MeshFor(c.n)
		if w*h < c.n {
			t.Fatalf("MeshFor(%d) = %dx%d does not fit", c.n, w, h)
		}
		if w != c.w || h != c.h {
			t.Fatalf("MeshFor(%d) = %dx%d, want %dx%d", c.n, w, h, c.w, c.h)
		}
		// Near-square: sides differ by at most one, and no row is wasted.
		if w-h < 0 || w-h > 1 {
			t.Fatalf("MeshFor(%d) = %dx%d not near-square", c.n, w, h)
		}
		if w*(h-1) >= c.n {
			t.Fatalf("MeshFor(%d) = %dx%d has an empty row", c.n, w, h)
		}
	}
}

func TestCustomParams(t *testing.T) {
	card, err := nic.NewEthernet(nic.DefaultEthernetConfig())
	if err != nil {
		t.Fatal(err)
	}
	params := cluster.DefaultParams()
	params.Fabric = card
	cEth, err := Compile(testSrc, Options{NumProcs: 4, Grain: lmad.Fine, Params: &params})
	if err != nil {
		t.Fatal(err)
	}
	resEth, err := cEth.RunParallel(Timing)
	if err != nil {
		t.Fatal(err)
	}
	cVB, err := Compile(testSrc, Options{NumProcs: 4, Grain: lmad.Fine})
	if err != nil {
		t.Fatal(err)
	}
	resVB, err := cVB.RunParallel(Timing)
	if err != nil {
		t.Fatal(err)
	}
	if resEth.Report.TotalXferTime() <= resVB.Report.TotalXferTime() {
		t.Fatalf("ethernet comm (%v) should exceed vbus comm (%v)",
			resEth.Report.TotalXferTime(), resVB.Report.TotalXferTime())
	}
}

func TestLargeProcCountGetsWiderMesh(t *testing.T) {
	c, err := Compile(testSrc, Options{NumProcs: 9, Grain: lmad.Fine})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunParallel(Timing); err != nil {
		t.Fatalf("9-proc run failed: %v", err)
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	if _, err := Compile("garbage", Options{}); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := Compile(`
      PROGRAM P
      CALL MISSING(1)
      END
`, Options{}); err == nil {
		t.Fatal("unknown subroutine accepted")
	}
}

func TestReportRenders(t *testing.T) {
	c, err := Compile(testSrc, Options{NumProcs: 2, Grain: lmad.Middle})
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if !strings.Contains(rep, "grain=middle") || !strings.Contains(rep, "parallel DO I") {
		t.Fatalf("report:\n%s", rep)
	}
}

// The static communication estimate must equal the measured transfer
// time exactly — the advisor is only trustworthy if it prices the same
// plan the runtime executes.
func TestEstimateMatchesMeasured(t *testing.T) {
	for _, grain := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
		c, err := Compile(testSrc, Options{NumProcs: 4, Grain: grain})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.RunParallel(Timing)
		if err != nil {
			t.Fatal(err)
		}
		params := cluster.DefaultParams()
		est := postpass.EstimateCommCost(c.SPMD, params)
		if est != res.Report.TotalXferTime() {
			t.Fatalf("grain %v: estimate %v != measured %v", grain, est, res.Report.TotalXferTime())
		}
	}
}

// The estimator must stay exact on the protocol-switched rdma fabric
// too: its simulated registration caches have to replay the runtime's
// eager/rendezvous decisions — including the coalesce stage's
// rendezvous stamps — transfer for transfer.
func TestEstimateMatchesMeasuredRdma(t *testing.T) {
	params, err := cluster.ParamsForFabric("rdma")
	if err != nil {
		t.Fatal(err)
	}
	for _, coalesce := range []bool{false, true} {
		for _, grain := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
			c, err := Compile(testSrc, Options{NumProcs: 4, Grain: grain, Fabric: "rdma", Coalesce: coalesce})
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.RunParallel(Timing)
			if err != nil {
				t.Fatal(err)
			}
			est := postpass.EstimateCommCost(c.SPMD, params)
			if est != res.Report.TotalXferTime() {
				t.Fatalf("grain %v coalesce %v: estimate %v != measured %v",
					grain, coalesce, est, res.Report.TotalXferTime())
			}
		}
	}
}

func TestAutoGrainPicksCheapest(t *testing.T) {
	params := cluster.DefaultParams()
	var costs []struct {
		g lmad.Grain
		t float64
	}
	for _, grain := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
		c, err := Compile(testSrc, Options{NumProcs: 4, Grain: grain})
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, struct {
			g lmad.Grain
			t float64
		}{grain, postpass.EstimateCommCost(c.SPMD, params).Seconds()})
	}
	best := costs[0]
	for _, c := range costs[1:] {
		if c.t < best.t {
			best = c
		}
	}
	auto, err := Compile(testSrc, Options{NumProcs: 4, AutoGrain: true})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Grain() != best.g {
		t.Fatalf("AutoGrain chose %v, cheapest is %v (%v)", auto.Grain(), best.g, costs)
	}
}

// Virtual-time determinism: identical compilations and runs must yield
// bit-identical clocks and accounting regardless of goroutine
// scheduling — the property that makes EXPERIMENTS.md reproducible.
func TestVirtualTimeDeterminism(t *testing.T) {
	run := func() (e, x int64) {
		c, err := Compile(testSrc, Options{NumProcs: 4, Grain: lmad.Fine})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.RunParallel(Timing)
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Elapsed), int64(res.Report.TotalXferTime())
	}
	e0, x0 := run()
	for i := 0; i < 10; i++ {
		e, x := run()
		if e != e0 || x != x0 {
			t.Fatalf("run %d diverged: elapsed %d vs %d, xfer %d vs %d", i, e, e0, x, x0)
		}
	}
}
