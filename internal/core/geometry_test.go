package core

import (
	"reflect"
	"testing"

	"vbuscluster/internal/cluster"
	"vbuscluster/internal/lmad"
)

// A fabric with a geometry preference (vbus3d) must drive the machine
// resolution: the 3D dims and wraparound come from the card, while
// hinting-free fabrics keep the legacy near-square 2D widening.
func TestMachineParamsGeometryHinter(t *testing.T) {
	p3d, err := cluster.ParamsForFabric("vbus3d")
	if err != nil {
		t.Fatal(err)
	}
	got := machineParams(&p3d, 64)
	if want := []int{4, 4, 4}; !reflect.DeepEqual(got.MeshDims, want) {
		t.Fatalf("vbus3d 64-rank dims = %v, want %v", got.MeshDims, want)
	}
	if !got.Torus {
		t.Fatal("vbus3d geometry should enable wraparound")
	}

	got = machineParams(&p3d, 1024)
	if want := []int{16, 8, 8}; !reflect.DeepEqual(got.MeshDims, want) {
		t.Fatalf("vbus3d 1024-rank dims = %v, want %v", got.MeshDims, want)
	}

	// An explicit MeshDims override beats the hint.
	pinned := p3d
	pinned.MeshDims = []int{8, 8}
	got = machineParams(&pinned, 64)
	if want := []int{8, 8}; !reflect.DeepEqual(got.MeshDims, want) {
		t.Fatalf("pinned dims overridden: %v, want %v", got.MeshDims, want)
	}

	// Hinting-free fabrics keep the 2D widening bit-identical.
	p2d, err := cluster.ParamsForFabric("vbus")
	if err != nil {
		t.Fatal(err)
	}
	got = machineParams(&p2d, 9)
	if len(got.MeshDims) != 0 {
		t.Fatalf("vbus grew MeshDims %v", got.MeshDims)
	}
	if got.MeshWidth != 3 || got.MeshHeight != 3 {
		t.Fatalf("vbus 9-rank mesh = %dx%d, want 3x3", got.MeshWidth, got.MeshHeight)
	}
	if got.Torus {
		t.Fatal("vbus should not enable wraparound")
	}
}

func TestEndToEndOnVBus3D(t *testing.T) {
	c, err := Compile(testSrc, Options{NumProcs: 8, Grain: lmad.Coarse, Fabric: "vbus3d"})
	if err != nil {
		t.Fatal(err)
	}
	res3d, err := c.RunParallel(Full)
	if err != nil {
		t.Fatalf("vbus3d run: %v", err)
	}
	cv, err := Compile(testSrc, Options{NumProcs: 8, Grain: lmad.Coarse})
	if err != nil {
		t.Fatal(err)
	}
	resVB, err := cv.RunParallel(Full)
	if err != nil {
		t.Fatal(err)
	}
	if res3d.Output != resVB.Output {
		t.Fatalf("numeric output depends on fabric: %q vs %q", res3d.Output, resVB.Output)
	}
	if res3d.Elapsed == resVB.Elapsed {
		t.Fatal("vbus3d priced identically to vbus; hop model not in effect")
	}
}
