package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"vbuscluster/internal/lmad"
)

// TestTestdataCorpus compiles and runs every sample program under
// testdata/ at all grains on 4 processors, checking SPMD results
// against the sequential run.
func TestTestdataCorpus(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.f")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			var seqMem map[string][]float64
			for i, grain := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
				c, err := Compile(string(src), Options{NumProcs: 4, Grain: grain})
				if err != nil {
					t.Fatalf("compile at %v: %v", grain, err)
				}
				if i == 0 {
					seq, err := c.RunSequential(Full)
					if err != nil {
						t.Fatalf("sequential: %v", err)
					}
					seqMem = seq.Mem
				}
				par, err := c.RunParallel(Full)
				if err != nil {
					t.Fatalf("parallel at %v: %v", grain, err)
				}
				// Compare observable state: arrays. Dead scalars (inner
				// loop indices, inlined temporaries) may legitimately
				// hold different values on the master after a
				// partitioned region -- live scalars are protected by
				// the privatization liveness check and reductions.
				for name, want := range seqMem {
					if len(want) <= 1 {
						continue
					}
					got, ok := par.Mem[name]
					if !ok || len(got) != len(want) {
						continue
					}
					for j := range want {
						if math.Abs(want[j]-got[j]) > 1e-9*(1+math.Abs(want[j])) {
							t.Fatalf("grain %v: %s[%d] = %g, want %g", grain, name, j, got[j], want[j])
						}
					}
				}
			}
		})
	}
}
