package cluster

import (
	"strings"
	"sync"
	"testing"

	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

func newTestCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := New(n, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidation(t *testing.T) {
	if _, err := New(0, DefaultParams()); err == nil {
		t.Fatal("zero processes accepted")
	}
	if _, err := New(5, DefaultParams()); err == nil {
		t.Fatal("5 processes on a 2x2 mesh accepted")
	}
	p := DefaultParams()
	p.Fabric = nil
	if _, err := New(2, p); err == nil {
		t.Fatal("nil card accepted")
	}
	p = DefaultParams()
	p.MeshWidth = 0
	if _, err := New(1, p); err == nil {
		t.Fatal("zero-width mesh accepted")
	}
}

func TestHops(t *testing.T) {
	c := newTestCluster(t, 4) // 2x2: ranks 0,1 top row; 2,3 bottom
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 1}, {0, 3, 2}, {1, 2, 2}, {3, 0, 2},
	}
	for _, cse := range cases {
		if got := c.Hops(cse.a, cse.b); got != cse.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", cse.a, cse.b, got, cse.want)
		}
	}
}

func TestChargeCompute(t *testing.T) {
	c := newTestCluster(t, 2)
	c.ChargeCompute(0, 10*sim.Microsecond)
	c.ChargeCompute(0, 5*sim.Microsecond)
	if c.Clock(0) != 15*sim.Microsecond {
		t.Fatalf("clock = %v", c.Clock(0))
	}
	if c.Clock(1) != 0 {
		t.Fatal("charging rank 0 moved rank 1")
	}
	r := c.Snapshot()
	if r.CompTime[0] != 15*sim.Microsecond || r.CommTime[0] != 0 {
		t.Fatalf("accounting wrong: %+v", r)
	}
}

func TestChargeComm(t *testing.T) {
	c := newTestCluster(t, 2)
	c.ChargeComm(1, 3*sim.Microsecond, 4096)
	r := c.Snapshot()
	if r.CommTime[1] != 3*sim.Microsecond || r.CommBytes[1] != 4096 || r.CommOps[1] != 1 {
		t.Fatalf("accounting wrong: %+v", r)
	}
	if c.Clock(1) != 3*sim.Microsecond {
		t.Fatal("comm charge did not advance clock")
	}
}

func TestBookCommDoesNotAdvanceClock(t *testing.T) {
	c := newTestCluster(t, 1)
	c.BookComm(0, 7*sim.Microsecond, 100)
	if c.Clock(0) != 0 {
		t.Fatal("BookComm advanced the clock")
	}
	if c.Snapshot().CommTime[0] != 7*sim.Microsecond {
		t.Fatal("BookComm did not record comm time")
	}
}

func TestAdvanceTo(t *testing.T) {
	c := newTestCluster(t, 1)
	c.AdvanceTo(0, 10*sim.Microsecond)
	c.AdvanceTo(0, 5*sim.Microsecond) // must not rewind
	if c.Clock(0) != 10*sim.Microsecond {
		t.Fatalf("clock = %v", c.Clock(0))
	}
}

func TestSetAllAndMaxClock(t *testing.T) {
	c := newTestCluster(t, 3)
	c.ChargeCompute(1, 20*sim.Microsecond)
	if c.MaxClock() != 20*sim.Microsecond {
		t.Fatal("MaxClock wrong")
	}
	c.SetAll(15 * sim.Microsecond)
	if c.Clock(0) != 15*sim.Microsecond || c.Clock(1) != 20*sim.Microsecond {
		t.Fatal("SetAll must lift but never rewind")
	}
}

func TestReset(t *testing.T) {
	c := newTestCluster(t, 2)
	c.ChargeCompute(0, sim.Microsecond)
	c.ChargeComm(1, sim.Microsecond, 10)
	c.Reset()
	r := c.Snapshot()
	if r.ElapsedVirtual() != 0 || r.MaxCommTime() != 0 || r.TotalCommBytes() != 0 {
		t.Fatalf("reset left state: %+v", r)
	}
}

func TestReportAggregates(t *testing.T) {
	c := newTestCluster(t, 4)
	c.ChargeComm(0, 2*sim.Microsecond, 100)
	c.ChargeComm(3, 5*sim.Microsecond, 300)
	c.ChargeCompute(2, 9*sim.Microsecond)
	r := c.Snapshot()
	if r.ElapsedVirtual() != 9*sim.Microsecond {
		t.Fatalf("elapsed = %v", r.ElapsedVirtual())
	}
	if r.MaxCommTime() != 5*sim.Microsecond {
		t.Fatalf("max comm = %v", r.MaxCommTime())
	}
	if r.TotalCommBytes() != 400 {
		t.Fatalf("bytes = %d", r.TotalCommBytes())
	}
	if r.TotalCommOps() != 2 {
		t.Fatalf("ops = %d", r.TotalCommOps())
	}
}

func TestConcurrentCharging(t *testing.T) {
	c := newTestCluster(t, 4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.ChargeCompute(rank, sim.Nanosecond)
				c.ChargeComm(rank, sim.Nanosecond, 1)
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < 4; r++ {
		if c.Clock(r) != 2000*sim.Nanosecond {
			t.Fatalf("rank %d clock = %v", r, c.Clock(r))
		}
	}
}

func TestRankRangePanics(t *testing.T) {
	c := newTestCluster(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range rank did not panic")
		}
	}()
	c.Clock(2)
}

func TestNegativeChargePanics(t *testing.T) {
	c := newTestCluster(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge did not panic")
		}
	}()
	c.ChargeCompute(0, -1)
}

func TestTorusHops(t *testing.T) {
	p := DefaultParams()
	p.MeshWidth, p.MeshHeight = 4, 4
	p.Torus = true
	c, err := New(16, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Hops(0, 15); got != 2 {
		t.Fatalf("torus corner hops = %d, want 2", got)
	}
	if got := c.Hops(0, 3); got != 1 {
		t.Fatalf("torus row wrap hops = %d, want 1", got)
	}
}

func TestRecorderAttachment(t *testing.T) {
	c := newTestCluster(t, 2)
	if c.Recorder() != nil {
		t.Fatal("fresh cluster has a recorder attached")
	}
	rec := trace.New()
	c.SetRecorder(rec)
	if c.Recorder() != rec {
		t.Fatal("SetRecorder did not attach")
	}
	c.SetRecorder(nil)
	if c.Recorder() != nil {
		t.Fatal("SetRecorder(nil) did not detach")
	}
}

func TestParamsForFabricUnknownListsBackends(t *testing.T) {
	if _, err := ParamsForFabric(""); err != nil {
		t.Fatalf("empty fabric should mean default: %v", err)
	}
	_, err := ParamsForFabric("nonsense")
	if err == nil {
		t.Fatal("unknown fabric accepted")
	}
	for _, name := range interconnect.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered backend %q", err, name)
		}
	}
}
