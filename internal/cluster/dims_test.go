package cluster

import (
	"errors"
	"testing"

	"vbuscluster/internal/mesh"
)

func TestNewRejectsBadGeometry(t *testing.T) {
	p := DefaultParams()
	p.MeshDims = []int{4, 0, 4}
	if _, err := New(4, p); !errors.Is(err, mesh.ErrBadGeometry) {
		t.Fatalf("zero dimension: got %v, want mesh.ErrBadGeometry", err)
	}
	p = DefaultParams()
	p.MeshDims = []int{2, 2, 2}
	if _, err := New(9, p); !errors.Is(err, mesh.ErrGeometryMismatch) {
		t.Fatalf("9 ranks on 8 nodes: got %v, want mesh.ErrGeometryMismatch", err)
	}
	p = DefaultParams()
	p.MeshWidth, p.MeshHeight = 2, 2
	if _, err := New(5, p); !errors.Is(err, mesh.ErrGeometryMismatch) {
		t.Fatalf("5 ranks on 2x2: got %v, want mesh.ErrGeometryMismatch", err)
	}
	p = DefaultParams()
	p.MeshDims = []int{2, 2, 2}
	if _, err := New(8, p); err != nil {
		t.Fatalf("exact-fit 3D geometry rejected: %v", err)
	}
}

func TestHops3DTorus(t *testing.T) {
	p := DefaultParams()
	p.MeshDims = []int{4, 4, 4}
	if h := p.Hops(0, 63); h != 9 {
		t.Fatalf("3D mesh corner hops = %d, want 9", h)
	}
	p.Torus = true
	if h := p.Hops(0, 63); h != 3 {
		t.Fatalf("3D torus corner hops = %d, want 3", h)
	}
	// Path agrees with Hops on every pair, endpoints included.
	for a := 0; a < 64; a += 7 {
		for b := 0; b < 64; b += 5 {
			if got, want := len(p.Path(a, b)), p.Hops(a, b)+1; got != want {
				t.Fatalf("path(%d,%d) has %d nodes, want %d", a, b, got, want)
			}
		}
	}
}

// The N-dim Hops must reproduce the legacy 2D arithmetic exactly when
// the geometry is 2D — the runtime's charging depends on it.
func TestHops2DCompat(t *testing.T) {
	p := DefaultParams()
	p.MeshWidth, p.MeshHeight = 4, 3
	legacy := func(a, b int) int {
		ax, ay := a%4, a/4
		bx, by := b%4, b/4
		dx, dy := ax-bx, ay-by
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
	for a := 0; a < 12; a++ {
		for b := 0; b < 12; b++ {
			if got, want := p.Hops(a, b), legacy(a, b); got != want {
				t.Fatalf("hops(%d,%d) = %d, legacy %d", a, b, got, want)
			}
		}
	}
}
