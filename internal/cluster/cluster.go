// Package cluster models the machine the paper evaluates on: a set of
// 300 MHz Pentium II PCs, each with 64 MB of memory, placed on a V-Bus
// mesh. It provides the per-process *virtual clocks* that the MPI
// runtime and the interpreter charge, and the CPU cost parameters used
// to convert abstract operation counts into virtual time.
//
// Virtual time replaces wall-clock measurement: every experiment in
// EXPERIMENTS.md compares virtual times, which makes results exactly
// reproducible and independent of the host machine.
package cluster

import (
	"fmt"
	"strings"
	"sync"

	"vbuscluster/internal/fault"
	"vbuscluster/internal/interconnect"
	"vbuscluster/internal/mesh"
	"vbuscluster/internal/nic"
	"vbuscluster/internal/sim"
	"vbuscluster/internal/trace"
)

// geomString renders a geometry as "16x8x8".
func geomString(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return strings.Join(parts, "x")
}

// CPUParams is the processor cost model. The defaults approximate a
// 300 MHz Pentium II running naive compiled Fortran loops: each
// floating-point operation in a loop body costs a couple of cycles once
// loads, stores and address arithmetic are folded in.
type CPUParams struct {
	// FlopTime is the charged time per floating-point operation
	// (including its share of loads/stores/address math).
	FlopTime sim.Time
	// IntOpTime is the charged time per integer/logical operation.
	IntOpTime sim.Time
	// LoopOverhead is the charged time per loop iteration for the
	// increment/test/branch.
	LoopOverhead sim.Time
	// MemCopyPerByte is the charged time per byte for local memory
	// copies (used for rank-local "communication").
	MemCopyPerByte sim.Time
	// CallOverhead is the charged time per subroutine call.
	CallOverhead sim.Time
	// SPMDIterOverhead is the extra per-iteration cost of a partitioned
	// (SPMD-ized) loop relative to the original sequential loop: the
	// generated code computes rank-dependent bounds and strides. It is
	// what makes the paper's 1-node "speedup" land below 1 (Table 1's
	// 0.96) independent of problem size.
	SPMDIterOverhead sim.Time
}

// DefaultCPUParams returns the Pentium II calibration.
func DefaultCPUParams() CPUParams {
	return CPUParams{
		FlopTime:         20 * sim.Nanosecond, // ~6 cycles @300MHz: mul/add + loads
		IntOpTime:        7 * sim.Nanosecond,
		LoopOverhead:     10 * sim.Nanosecond,
		MemCopyPerByte:   5 * sim.Nanosecond, // ~200 MB/s copy on 2001 SDRAM
		CallOverhead:     100 * sim.Nanosecond,
		SPMDIterOverhead: 6 * sim.Nanosecond,
	}
}

// Params bundles everything the runtime needs to cost operations.
type Params struct {
	CPU CPUParams
	// Fabric is the interconnect cost model shared by all nodes — the
	// pluggable machine-layer seam. Any registered backend (vbus,
	// ethernet, ideal, ...) slots in here; see ParamsForFabric.
	Fabric interconnect.Interconnect
	// MeshWidth/MeshHeight place the nodes. Nodes beyond the process
	// count stay idle. Ignored when MeshDims is set.
	MeshWidth, MeshHeight int
	// MeshDims generalizes the placement to an N-dimensional grid
	// (e.g. [16, 8, 8] for a 1024-node 3-D torus). Empty means
	// [MeshWidth, MeshHeight]. See Dims.
	MeshDims []int
	// Torus wraps the mesh in every dimension, shortening worst-case
	// hop distances (see mesh.Config.Torus for the flit-level model).
	Torus bool
	// Faults is the optional deterministic fault injector. Nil (the
	// default) models the paper's perfect network: no retries, no
	// outages, no slow or crashed nodes — and every charge is
	// bit-identical to a build without the fault layer.
	Faults *fault.Injector
}

// DefaultParams is the paper configuration: V-Bus cards on a 2x2 mesh
// (the experiment used a 4-node configuration).
func DefaultParams() Params {
	card, err := nic.NewVBus(nic.DefaultVBusConfig())
	if err != nil {
		panic("cluster: default vbus config invalid: " + err.Error())
	}
	return Params{
		CPU:        DefaultCPUParams(),
		Fabric:     card,
		MeshWidth:  2,
		MeshHeight: 2,
	}
}

// ParamsForFabric is DefaultParams with the interconnect swapped for
// the named registered backend ("vbus", "ethernet", "ideal", ...).
// The empty name means the default machine.
func ParamsForFabric(name string) (Params, error) {
	p := DefaultParams()
	if name == "" {
		return p, nil
	}
	ic, err := interconnect.New(name)
	if err != nil {
		return Params{}, fmt.Errorf("cluster: %w", err)
	}
	p.Fabric = ic
	return p, nil
}

// FabricCard implements nic.Machine: the machine's interconnect cost
// model.
func (p Params) FabricCard() interconnect.Interconnect { return p.Fabric }

// MemCopyCost implements nic.Machine: the CPU's per-byte memory-copy
// charge.
func (p Params) MemCopyCost() sim.Time { return p.CPU.MemCopyPerByte }

// Dims is the normalized mesh geometry: MeshDims when set, otherwise
// [MeshWidth, MeshHeight].
func (p Params) Dims() []int {
	if len(p.MeshDims) > 0 {
		return p.MeshDims
	}
	return []int{p.MeshWidth, p.MeshHeight}
}

// dimStrides returns the row-major coordinate strides of a geometry.
func dimStrides(dims []int) []int {
	strides := make([]int, len(dims))
	s := 1
	for i, d := range dims {
		strides[i] = s
		s *= d
	}
	return strides
}

// Hops reports the mesh hop distance between the nodes of two ranks
// placed row-major on the params' mesh (any number of dimensions). It
// is the single geometry helper shared by the runtime's charging and
// the compiler's static cost estimator, so the two cannot disagree.
func (p Params) Hops(a, b int) int {
	dims := p.Dims()
	strides := dimStrides(dims)
	total := 0
	for i, size := range dims {
		ac, bc := a/strides[i], b/strides[i]
		if i < len(dims)-1 {
			ac, bc = ac%size, bc%size
		}
		d := ac - bc
		if d < 0 {
			d = -d
		}
		if p.Torus {
			if w := size - d; w < d {
				d = w
			}
		}
		total += d
	}
	return total
}

// Path lists the mesh nodes a message from rank a's node to rank b's
// node visits in order (endpoints included), following the same
// dimension-ordered routing as the flit-level simulator: dimension 0
// is corrected first, then 1, and so on, taking the shorter wrap
// direction on a torus (ties go to the positive direction). The fault
// injector's link outages are resolved against this path.
func (p Params) Path(a, b int) []int {
	dims := p.Dims()
	strides := dimStrides(dims)
	cur := make([]int, len(dims))
	dst := make([]int, len(dims))
	for i, size := range dims {
		cur[i] = (a / strides[i]) % size
		dst[i] = (b / strides[i]) % size
	}
	node := func() int {
		n := 0
		for i := range dims {
			n += cur[i] * strides[i]
		}
		return n
	}
	path := []int{a}
	// dir picks +1 or -1 along one axis: toward the destination on a
	// plain mesh, the shorter wrap on a torus (ties go positive). The
	// step counts match Params.Hops by construction.
	dir := func(curv, dstv, size int) int {
		fwd := dstv - curv
		if fwd < 0 {
			fwd += size
		}
		bwd := size - fwd
		if !p.Torus {
			if dstv > curv {
				return 1
			}
			return -1
		}
		if fwd <= bwd {
			return 1
		}
		return -1
	}
	for i, size := range dims {
		for cur[i] != dst[i] {
			cur[i] = (cur[i] + dir(cur[i], dst[i], size) + size) % size
			path = append(path, node())
		}
	}
	return path
}

// Cluster is a set of processes with virtual clocks placed on a mesh.
// All methods are safe for concurrent use by the per-rank goroutines.
type Cluster struct {
	params Params
	n      int

	// rec is the optional event recorder. It is attached once, before
	// the per-rank goroutines start, and read (nil-checked) on every
	// operation, so tracing costs one pointer load when off.
	rec *trace.Recorder

	mu        sync.Mutex
	clocks    []sim.Time
	commTime  []sim.Time // communication time charged per rank
	xferTime  []sim.Time // data-transfer subset of commTime (no sync)
	compTime  []sim.Time // computation time charged per rank
	commBytes []int64
	commOps   []int64
	// opsSeen counts MPI operations issued per rank. It feeds the
	// crashafter fault and is only bumped when such a fault is
	// scheduled, so the zero-fault hot path never touches it.
	opsSeen []int64

	// regCaches holds one memory-registration cache per physical node
	// when the fabric prices an eager/rendezvous protocol choice
	// (interconnect.ProtocolModel), nil otherwise. Like opsSeen, the
	// caches are per-node sender-side state that survives communicator
	// rebuilds and is cleared by Reset. They live here rather than in
	// the card because core.Compiled shares one card instance across
	// concurrent runs (the vbserve plan cache) — mutable per-run state
	// in the card would race.
	regCaches []*interconnect.RegCache
}

// New builds a cluster of n processes. Ranks are placed row-major on
// the mesh; n may not exceed the mesh capacity. Geometry rejections
// carry the mesh package's named errors (mesh.ErrBadGeometry,
// mesh.ErrGeometryMismatch) so callers can classify them.
func New(n int, params Params) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one process, got %d", n)
	}
	dims := params.Dims()
	capacity := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("cluster: invalid mesh %s: %w", geomString(dims), mesh.ErrBadGeometry)
		}
		capacity *= d
	}
	if n > capacity {
		return nil, fmt.Errorf("cluster: %d processes exceed %d mesh nodes (%s): %w",
			n, capacity, geomString(dims), mesh.ErrGeometryMismatch)
	}
	if params.Fabric == nil {
		return nil, fmt.Errorf("cluster: nil interconnect backend")
	}
	c := &Cluster{
		params:    params,
		n:         n,
		clocks:    make([]sim.Time, n),
		commTime:  make([]sim.Time, n),
		xferTime:  make([]sim.Time, n),
		compTime:  make([]sim.Time, n),
		commBytes: make([]int64, n),
		commOps:   make([]int64, n),
		opsSeen:   make([]int64, n),
	}
	if pm, ok := params.Fabric.(interconnect.ProtocolModel); ok {
		c.regCaches = make([]*interconnect.RegCache, n)
		for i := range c.regCaches {
			c.regCaches[i] = interconnect.NewRegCache(pm.RegCacheCapacity())
		}
	}
	return c, nil
}

// N reports the process count.
func (c *Cluster) N() int { return c.n }

// Params returns the cost parameters.
func (c *Cluster) Params() Params { return c.params }

// Fabric returns the interconnect cost model.
func (c *Cluster) Fabric() interconnect.Interconnect { return c.params.Fabric }

// SetRecorder attaches an event recorder (nil detaches). It must be
// called before the run's goroutines start issuing operations.
func (c *Cluster) SetRecorder(r *trace.Recorder) { c.rec = r }

// Recorder returns the attached event recorder, nil when tracing is
// off.
func (c *Cluster) Recorder() *trace.Recorder { return c.rec }

// Hops reports the mesh hop distance between two ranks' nodes.
func (c *Cluster) Hops(a, b int) int { return c.params.Hops(a, b) }

// RegCache returns node's memory-registration cache, or nil when the
// fabric has no eager/rendezvous protocol model.
func (c *Cluster) RegCache(node int) *interconnect.RegCache {
	if c.regCaches == nil {
		return nil
	}
	c.check(node)
	return c.regCaches[node]
}

func (c *Cluster) check(rank int) {
	if rank < 0 || rank >= c.n {
		panic(fmt.Sprintf("cluster: rank %d out of range [0,%d)", rank, c.n))
	}
}

// Clock reports rank's current virtual time.
func (c *Cluster) Clock(rank int) sim.Time {
	c.check(rank)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clocks[rank]
}

// ChargeCompute advances rank's clock by d and books it as computation.
// A slow-node fault scales the charge: the injected factor models a
// thermally throttled or overloaded node that still makes progress.
func (c *Cluster) ChargeCompute(rank int, d sim.Time) {
	c.check(rank)
	if d < 0 {
		panic("cluster: negative compute charge")
	}
	if f := c.params.Faults.SlowFactor(rank); f > 1 {
		d = sim.Time(float64(d)*f + 0.5)
	}
	c.mu.Lock()
	c.clocks[rank] += d
	c.compTime[rank] += d
	c.mu.Unlock()
}

// Faults returns the cluster's fault injector (nil when fault injection
// is off — the nil injector is inert, so callers may use it directly).
func (c *Cluster) Faults() *fault.Injector { return c.params.Faults }

// ChargeComm advances rank's clock by d and books it as communication,
// with bytes moved for throughput accounting.
func (c *Cluster) ChargeComm(rank int, d sim.Time, bytes int) {
	c.check(rank)
	if d < 0 {
		panic("cluster: negative comm charge")
	}
	c.mu.Lock()
	c.clocks[rank] += d
	c.commTime[rank] += d
	c.xferTime[rank] += d
	c.commBytes[rank] += int64(bytes)
	c.commOps[rank]++
	c.mu.Unlock()
}

// BookComm records d of communication time (and bytes) on rank's
// accounting without advancing its clock. Synchronizing operations use
// it: the clock movement happens collectively via SetAll, but the comm
// cost must still show up in the rank's communication-time report.
func (c *Cluster) BookComm(rank int, d sim.Time, bytes int) {
	c.check(rank)
	if d < 0 {
		panic("cluster: negative comm booking")
	}
	c.mu.Lock()
	c.commTime[rank] += d
	c.commBytes[rank] += int64(bytes)
	c.commOps[rank]++
	c.mu.Unlock()
}

// AdvanceTo lifts rank's clock to at least t (used when a receive
// blocks until a matching send: waiting is neither compute nor comm
// work, but time still passes).
func (c *Cluster) AdvanceTo(rank int, t sim.Time) {
	c.check(rank)
	c.mu.Lock()
	if c.clocks[rank] < t {
		c.clocks[rank] += t - c.clocks[rank]
	}
	c.mu.Unlock()
}

// SetAll sets every clock to t (used by barrier-style collectives).
func (c *Cluster) SetAll(t sim.Time) {
	c.mu.Lock()
	for i := range c.clocks {
		if c.clocks[i] < t {
			c.clocks[i] = t
		}
	}
	c.mu.Unlock()
}

// SetSome lifts the clocks of the listed ranks to t, leaving all
// others untouched. Collectives on a shrunken communicator use it:
// after a crash, dead and excluded ranks must keep their last clock
// reading rather than be dragged along by the survivors' barriers.
func (c *Cluster) SetSome(ranks []int, t sim.Time) {
	c.mu.Lock()
	for _, r := range ranks {
		if r >= 0 && r < c.n && c.clocks[r] < t {
			c.clocks[r] = t
		}
	}
	c.mu.Unlock()
}

// BumpOps increments rank's MPI-operation counter and returns the new
// count. The counter persists across communicator rebuilds so a
// crashafter fault keyed on the physical node fires exactly once.
func (c *Cluster) BumpOps(rank int) int64 {
	c.check(rank)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opsSeen[rank]++
	return c.opsSeen[rank]
}

// MaxClock reports the furthest-ahead clock.
func (c *Cluster) MaxClock() sim.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	var max sim.Time
	for _, t := range c.clocks {
		if t > max {
			max = t
		}
	}
	return max
}

// Report is a per-run accounting snapshot.
type Report struct {
	Clocks []sim.Time
	// CommTime is all communication time per rank, synchronization
	// (barriers, fences, collective waits) included.
	CommTime []sim.Time
	// XferTime is the data-transfer subset of CommTime: the cost of the
	// PUT/GET/send payload movement that the compiler's communication
	// granularity controls.
	XferTime  []sim.Time
	CompTime  []sim.Time
	CommBytes []int64
	CommOps   []int64
}

// TotalXferTime sums the data-transfer time over all ranks — the
// granularity-sensitive "communication time" that Table 2 compares.
func (r Report) TotalXferTime() sim.Time {
	var s sim.Time
	for _, t := range r.XferTime {
		s += t
	}
	return s
}

// TotalCommTime sums all communication time (including
// synchronization) over all ranks.
func (r Report) TotalCommTime() sim.Time {
	var s sim.Time
	for _, t := range r.CommTime {
		s += t
	}
	return s
}

// ElapsedVirtual is the makespan: the furthest-ahead clock.
func (r Report) ElapsedVirtual() sim.Time {
	var max sim.Time
	for _, t := range r.Clocks {
		if t > max {
			max = t
		}
	}
	return max
}

// MaxCommTime is the largest per-rank communication time — the paper's
// "total communication time" metric (the comm time on the critical
// path).
func (r Report) MaxCommTime() sim.Time {
	var max sim.Time
	for _, t := range r.CommTime {
		if t > max {
			max = t
		}
	}
	return max
}

// TotalCommBytes sums bytes moved by every rank.
func (r Report) TotalCommBytes() int64 {
	var s int64
	for _, b := range r.CommBytes {
		s += b
	}
	return s
}

// TotalCommOps sums communication operations issued by every rank.
func (r Report) TotalCommOps() int64 {
	var s int64
	for _, b := range r.CommOps {
		s += b
	}
	return s
}

// Snapshot copies the current accounting state.
func (c *Cluster) Snapshot() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := Report{
		Clocks:    append([]sim.Time(nil), c.clocks...),
		CommTime:  append([]sim.Time(nil), c.commTime...),
		XferTime:  append([]sim.Time(nil), c.xferTime...),
		CompTime:  append([]sim.Time(nil), c.compTime...),
		CommBytes: append([]int64(nil), c.commBytes...),
		CommOps:   append([]int64(nil), c.commOps...),
	}
	return r
}

// Reset zeroes all clocks and accounting, and empties the
// registration caches (a fresh run starts with nothing pinned).
func (c *Cluster) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.clocks {
		c.clocks[i] = 0
		c.commTime[i] = 0
		c.xferTime[i] = 0
		c.compTime[i] = 0
		c.commBytes[i] = 0
		c.commOps[i] = 0
		c.opsSeen[i] = 0
	}
	for _, rc := range c.regCaches {
		rc.Reset()
	}
}
