module vbuscluster

go 1.22
