// Broadcast: the §2.1 Virtual Bus claim — broadcasting over the
// dynamically constructed bus beats a software tree of point-to-point
// wormhole messages, and the bus freezes in-flight p2p traffic.
package main

import (
	"fmt"
	"log"

	"vbuscluster/internal/bench"
	"vbuscluster/internal/mesh"
	"vbuscluster/internal/nic"
	"vbuscluster/internal/sim"
)

func main() {
	res, err := bench.RunMicro()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("broadcast on a 4x4 V-Bus mesh")
	fmt.Println("bytes     virtual bus   p2p tree      fast ethernet tree")
	for _, p := range res.Broadcast {
		fmt.Printf("%-9d %-13v %-13v %v\n", p.Bytes, p.VBus, p.TreeP2P, p.Ethernet)
	}

	// Show the freeze: a long p2p transfer is stalled by an intervening
	// broadcast and resumes afterwards.
	card, err := nic.NewVBus(nic.DefaultVBusConfig())
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.NewEngine()
	m, err := mesh.New(eng, card.MeshConfig(4, 1))
	if err != nil {
		log.Fatal(err)
	}
	var soloDone sim.Time
	m.Send(0, 3, 1<<16, func(t sim.Time) { soloDone = t })
	eng.Run()

	eng2 := sim.NewEngine()
	m2, err := mesh.New(eng2, card.MeshConfig(4, 1))
	if err != nil {
		log.Fatal(err)
	}
	var frozenDone sim.Time
	m2.Send(0, 3, 1<<16, func(t sim.Time) { frozenDone = t })
	eng2.After(1*sim.Microsecond, func() { m2.Broadcast(1, 1<<16, nil) })
	eng2.Run()

	fmt.Printf("\n64 KiB p2p transfer alone:            %v\n", soloDone)
	fmt.Printf("same transfer frozen by a broadcast:  %v (+%v)\n",
		frozenDone, frozenDone-soloDone)
	fmt.Printf("p2p progress events delayed by bus:   %d\n", m2.Stats().FrozenByBus)
}
