// Granularity: the paper's Figure 9 worked example — one access region
// with a stride-3 innermost dimension, planned at the three
// communication granularities, showing the exact transfers each grain
// generates and their cost under the V-Bus card model.
package main

import (
	"fmt"
	"log"

	"vbuscluster/internal/lmad"
	"vbuscluster/internal/nic"
)

func main() {
	// Figure 9's region: stride-3 accesses, 4 per row, rows 24 apart.
	l := lmad.New("A", 0).WithDim(24, 24).WithDim(3, 9)
	fmt.Printf("access region:\n%s", l.Diagram(36))
	fmt.Printf("exact elements: %v\n\n", l.Enumerate(100))

	card, err := nic.NewVBus(nic.DefaultVBusConfig())
	if err != nil {
		log.Fatal(err)
	}

	for _, g := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
		plan := lmad.Plan(l, 0, g)
		if g == lmad.Coarse {
			plan = lmad.MergeContiguous(plan)
		}
		st := lmad.Stats(l, plan)
		fmt.Printf("%v grain: %d message(s), %d strided, %d elements on the wire (%d exact)\n",
			g, st.Messages, st.StridedMsgs, st.Elements, st.ExactElements)
		var total float64
		for _, tr := range plan {
			var t float64
			if tr.Stride > 1 {
				t = (card.SendSetup() + card.StridedTime(int(tr.Elems), 8, 2)).Seconds()
			} else {
				t = (card.SendSetup() + card.ContigTime(int(tr.Elems)*8, 2)).Seconds()
			}
			fmt.Printf("  PUT offset=%-4d elems=%-4d stride=%-2d  cost %.2fus\n",
				tr.Offset, tr.Elems, tr.Stride, t*1e6)
			total += t
		}
		fmt.Printf("  total %.2fus\n", total*1e6)
		fmt.Printf("  wire image (■ exact, ▒ redundant):\n  %s\n", lmad.DiagramTransfers(l, plan, 36))
	}
}
