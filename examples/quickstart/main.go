// Quickstart: compile a small Fortran 77 program with the parallelizing
// compiler, inspect what the front end found (parallel loops, LMADs),
// and run it both sequentially and as SPMD code on the simulated V-Bus
// cluster.
package main

import (
	"fmt"
	"log"

	"vbuscluster/internal/analysis"
	"vbuscluster/internal/core"
	"vbuscluster/internal/f77"
	"vbuscluster/internal/lmad"
)

// The paper's Figure 2 access pattern (stride-2 writes) followed by a
// dense update, so both scatter and collect communication appear.
const src = `
      PROGRAM QUICK
      INTEGER N
      PARAMETER (N = 1000)
      REAL A(N), B(N), S
      INTEGER I
      DO I = 1, N
        B(I) = REAL(I) * 0.5
      ENDDO
      DO I = 1, N/2
        A(2*I-1) = B(2*I-1) + 1.0
        A(2*I)   = B(2*I) * 2.0
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + A(I)
      ENDDO
      PRINT *, 'CHECKSUM', S
      END
`

func main() {
	c, err := core.Compile(src, core.Options{NumProcs: 4, Grain: lmad.Coarse})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== what the front end found ==")
	f77.WalkStmts(c.Prog.Main().Body, func(s f77.Stmt) bool {
		if loop, ok := s.(*f77.DoLoop); ok {
			fmt.Printf("  %s\n", analysis.Explain(loop))
		}
		return true
	})

	fmt.Println("\n== the LMAD of the paper's Figure 2 (DO i=1,11,2: A(i)) ==")
	fig2 := lmad.New("A", 0).WithDim(2, 10)
	fmt.Printf("  %s → accesses %v\n", fig2, fig2.Enumerate(100))

	fmt.Println("\n== SPMD translation ==")
	fmt.Print(c.Report())

	seq, err := c.RunSequential(core.Full)
	if err != nil {
		log.Fatal(err)
	}
	par, err := c.RunParallel(core.Full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== execution ==")
	fmt.Printf("  sequential: %s    virtual time %v\n", trim(seq.Output), seq.Elapsed)
	fmt.Printf("  4-node SPMD: %s   virtual time %v (comm %v)\n",
		trim(par.Output), par.Elapsed, par.Report.TotalXferTime())
	fmt.Printf("  speedup: %.2f\n", float64(seq.Elapsed)/float64(par.Elapsed))
}

func trim(s string) string {
	if len(s) > 0 && s[len(s)-1] == '\n' {
		return s[:len(s)-1]
	}
	return s
}
