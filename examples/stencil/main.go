// Stencil: the SWIM shallow-water kernel (the paper's second
// benchmark). Shows how communication granularity changes the comm
// time of a 2-D stencil code — the Table 2 experiment for one program.
package main

import (
	"fmt"
	"log"

	"vbuscluster/internal/bench"
	"vbuscluster/internal/core"
	"vbuscluster/internal/lmad"
)

func main() {
	src := bench.SwimSource(128, 128)
	fmt.Println("SWIM 128x128, ITMAX=1, 4 nodes")
	fmt.Println("grain    comm time      total time   wire bytes")
	var fine, coarse float64
	for _, grain := range []lmad.Grain{lmad.Fine, lmad.Middle, lmad.Coarse} {
		c, err := core.Compile(src, core.Options{NumProcs: 4, Grain: grain})
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.RunParallel(core.Timing)
		if err != nil {
			log.Fatal(err)
		}
		comm := res.Report.TotalXferTime()
		fmt.Printf("%-8v %-14v %-12v %d\n", grain, comm, res.Elapsed, res.Report.TotalCommBytes())
		switch grain {
		case lmad.Fine:
			fine = comm.Seconds()
		case lmad.Coarse:
			coarse = comm.Seconds()
		}
	}
	fmt.Printf("\ncoarse-grain speedup of communication: %.2fx (paper: ~1.3-2.9x)\n", fine/coarse)
}
