// Matmul: the paper's Table 1 experiment in miniature — compile the MM
// benchmark at several sizes and node counts and print the speedup
// grid, then verify the 4-node result against the sequential run.
package main

import (
	"fmt"
	"log"
	"math"

	"vbuscluster/internal/bench"
	"vbuscluster/internal/core"
	"vbuscluster/internal/lmad"
)

func main() {
	rows, err := bench.Table1([]int{64, 128, 256}, []int{1, 2, 4}, lmad.Fine, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatTable1(rows))

	// Correctness: full-mode parallel result equals sequential.
	fmt.Println("\nverifying 4-node result at 64x64 ...")
	c, err := core.Compile(bench.MMSource(64), core.Options{NumProcs: 4, Grain: lmad.Coarse})
	if err != nil {
		log.Fatal(err)
	}
	seq, err := c.RunSequential(core.Full)
	if err != nil {
		log.Fatal(err)
	}
	par, err := c.RunParallel(core.Full)
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for i, v := range seq.Mem["C"] {
		maxDiff = math.Max(maxDiff, math.Abs(v-par.Mem["C"][i]))
	}
	fmt.Printf("max |C_seq - C_par| = %g\n", maxDiff)
	if maxDiff != 0 {
		log.Fatal("parallel result differs from sequential")
	}
	fmt.Println("OK: bit-identical")
}
